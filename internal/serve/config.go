// Package serve is the network serving layer over the unified query
// interface: an http.Handler that fronts any query.ContextQuerier (in
// practice the concurrent engine) with single-flight request coalescing and
// latency-aware admission control.
//
// The layer addresses the two failure modes of serving an adaptive index to
// an open workload. First, frequent queries arrive in bursts of identical
// expressions — exactly the FUPs the index refines for — so concurrent
// duplicates are collapsed into one engine evaluation whose result fans out
// to every waiter (coalesce.go). Second, an overloaded server that queues
// without bound turns overload into unbounded latency for everyone;
// admission control (admission.go) bounds the wait queue, sheds with
// 429 + Retry-After when the queue or the observed p99 crosses configured
// thresholds, and threads each request's context into the engine so a
// disconnected client stops paying for validation.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// ErrInvalidConfig is wrapped by every Config.Validate failure.
var ErrInvalidConfig = errors.New("serve: invalid config")

// Config bounds the server's concurrency and shedding behavior. The zero
// value of a field selects the documented default where one exists;
// DefaultConfig returns them explicitly. A nonsensical value (negative
// worker count, zero or negative queue depth, negative duration) is
// rejected by Validate — New refuses to construct a server from one.
type Config struct {
	// MaxConcurrent bounds the queries executing in the backing querier at
	// once. Zero means runtime.GOMAXPROCS(0); negative is invalid.
	MaxConcurrent int

	// QueueDepth bounds the requests allowed to wait for an execution
	// slot once all MaxConcurrent slots are busy. Arrivals beyond the
	// bound are shed with 429. It must be positive: an unbounded queue
	// converts overload into unbounded latency, and a zero queue would
	// make MaxConcurrent a hard rate limit — if that is what you want,
	// say QueueDepth: 1 and QueueTimeout: 1 * time.Nanosecond.
	QueueDepth int

	// QueueTimeout bounds how long an admitted request may wait for an
	// execution slot before it is shed. Zero means 500ms; negative is
	// invalid.
	QueueTimeout time.Duration

	// ShedP99 is the p99 service latency (observed over Window) above
	// which queued arrivals are shed even before the queue fills. Zero
	// disables the breaker; negative is invalid.
	ShedP99 time.Duration

	// Window is the width of the rotating window the latency quantiles
	// are observed over. Zero means 5s; negative is invalid.
	Window time.Duration

	// RetryAfter is the hint returned in the Retry-After header of a 429
	// response, rounded up to whole seconds. Zero means 1s; negative is
	// invalid.
	RetryAfter time.Duration

	// The four HTTP network timeouts below are applied by HTTPServer; they
	// bound what a slow or hostile client can pin. Zero selects the
	// documented default; negative is invalid. (There is deliberately no
	// "disable" spelling — an untimed server hands slow-loris clients a
	// connection for free.)

	// ReadHeaderTimeout bounds how long a client may take to finish its
	// request headers — the classic slow-loris vector. Zero means 5s.
	ReadHeaderTimeout time.Duration

	// ReadTimeout bounds reading one whole request. Zero means 30s.
	ReadTimeout time.Duration

	// WriteTimeout bounds writing one whole response, so a trickle-reading
	// (or half-open, no-longer-reading) client cannot pin the connection's
	// goroutine past it. Zero means 30s.
	WriteTimeout time.Duration

	// IdleTimeout reaps keep-alive connections with no request in flight.
	// Zero means 2m.
	IdleTimeout time.Duration
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		MaxConcurrent:     runtime.GOMAXPROCS(0),
		QueueDepth:        64,
		QueueTimeout:      500 * time.Millisecond,
		ShedP99:           0, // breaker disabled
		Window:            5 * time.Second,
		RetryAfter:        time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Validate rejects plainly invalid configurations with an error wrapping
// ErrInvalidConfig.
func (c Config) Validate() error {
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("%w: MaxConcurrent %d (zero means GOMAXPROCS)", ErrInvalidConfig, c.MaxConcurrent)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("%w: QueueDepth %d (must be positive; an unbounded queue is unbounded latency)", ErrInvalidConfig, c.QueueDepth)
	}
	for _, f := range []struct {
		name string
		v    time.Duration
	}{
		{"QueueTimeout", c.QueueTimeout},
		{"ShedP99", c.ShedP99},
		{"Window", c.Window},
		{"RetryAfter", c.RetryAfter},
		{"ReadHeaderTimeout", c.ReadHeaderTimeout},
		{"ReadTimeout", c.ReadTimeout},
		{"WriteTimeout", c.WriteTimeout},
		{"IdleTimeout", c.IdleTimeout},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s %v (negative duration)", ErrInvalidConfig, f.name, f.v)
		}
	}
	return nil
}

// withDefaults resolves the zero values that mean "use the default".
func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 500 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 5 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	return c
}

// HTTPServer returns an http.Server serving h with the configured network
// timeouts applied (resolving zero fields to their defaults). The serving
// layer's slot pool protects the engine; these timeouts protect the
// connection layer in front of it — without them a client trickling its
// header bytes (slow loris) or never reading its response (half-open)
// holds a connection goroutine forever.
func (c Config) HTTPServer(h http.Handler) *http.Server {
	c = c.withDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: c.ReadHeaderTimeout,
		ReadTimeout:       c.ReadTimeout,
		WriteTimeout:      c.WriteTimeout,
		IdleTimeout:       c.IdleTimeout,
	}
}
