package serve

import "sync/atomic"

// counters is the server's lock-free event accounting. Received counts
// every /query request after parsing; each then lands in exactly one of
// Served, Shed, Canceled or Errored. Coalesced additionally counts served
// requests that joined another request's in-flight evaluation instead of
// executing their own, and Flights counts the evaluations actually run —
// so under a bursty identical-query workload Flights + Coalesced ≈ Served
// with Flights ≪ Served.
type counters struct {
	Received  atomic.Uint64
	Served    atomic.Uint64
	Coalesced atomic.Uint64
	Flights   atomic.Uint64
	Shed      atomic.Uint64
	Canceled  atomic.Uint64
	Errored   atomic.Uint64
}

// CountersSnapshot is a point-in-time copy of the serving counters,
// JSON-encodable for /stats.
type CountersSnapshot struct {
	Received  uint64 `json:"received"`
	Served    uint64 `json:"served"`
	Coalesced uint64 `json:"coalesced"`
	Flights   uint64 `json:"flights"`
	Shed      uint64 `json:"shed"`
	Canceled  uint64 `json:"canceled"`
	Errored   uint64 `json:"errored"`
}

func (c *counters) snapshot() CountersSnapshot {
	return CountersSnapshot{
		Received:  c.Received.Load(),
		Served:    c.Served.Load(),
		Coalesced: c.Coalesced.Load(),
		Flights:   c.Flights.Load(),
		Shed:      c.Shed.Load(),
		Canceled:  c.Canceled.Load(),
		Errored:   c.Errored.Load(),
	}
}
