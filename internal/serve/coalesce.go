package serve

import (
	"context"
	"sync"

	"mrx/internal/query"
)

// flight is one in-progress evaluation that any number of callers wait on.
type flight struct {
	done    chan struct{} // closed after res/err are set and the flight is unpublished
	res     query.Result
	err     error
	waiters int                // guarded by coalescer.mu
	cancel  context.CancelFunc // cancels the evaluation's context
}

// coalescer collapses concurrent evaluations of the same canonical path
// expression into one: the first caller for a key starts the evaluation
// (the "leader"), later callers for the same key join the existing flight,
// and the single result fans out to every waiter. This is single-flight
// with one refinement for a serving layer: the evaluation runs under its
// own context that is canceled only when every waiter has detached, so one
// impatient client cannot kill a result other clients still want, while a
// query nobody is waiting for anymore stops validating mid-flight.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// do returns exec's result for key, coalescing concurrent callers: at most
// one exec runs per key at a time. shared reports whether this caller
// joined a flight started by another (the coalesce counter). If ctx is
// done before the flight completes, do detaches and returns ctx.Err(); the
// last waiter to detach cancels the exec context.
//
//mrx:hotpath coalescer fast path: every served request passes through here
func (c *coalescer) do(ctx context.Context, key string, exec func(context.Context) (query.Result, error)) (res query.Result, shared bool, err error) {
	c.mu.Lock()
	f, ok := c.flights[key]
	if ok {
		f.waiters++
	} else {
		//mrlint:allow ctxflow flight outlives any one waiter; detach is deliberate, lifetime is refcounted and the last detaching waiter cancels
		execCtx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		c.flights[key] = f
		go func() {
			res, err := exec(execCtx)
			c.mu.Lock()
			f.res, f.err = res, err
			// Unpublish before signaling: a caller arriving after done is
			// closed must start a fresh flight, never join a finished one.
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.res, ok, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Nobody is listening for this result anymore: stop the
			// evaluation. The exec goroutine still runs to completion
			// (promptly, once the engine observes the cancellation) and
			// cleans up the flight itself.
			f.cancel()
		}
		c.mu.Unlock()
		return query.Result{}, ok, ctx.Err()
	}
}
