package engine

import (
	"fmt"
	"testing"

	"mrx/internal/core"
	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
	"mrx/internal/shard"
)

// benchCorpus builds the multi-document corpus the sharding benchmarks run
// on, with a supportable workload refined into every index so freezes carry
// realistic component counts.
func benchCorpus(b *testing.B) (*graph.Graph, []*pathexpr.Expr) {
	b.Helper()
	g, err := datagen.CorpusGraph(0.2, 1, 12)
	if err != nil {
		b.Fatal(err)
	}
	var fups []*pathexpr.Expr
	for _, w := range gtest.RandomWorkload(2, g, gtest.WorkloadOptions{Size: 60, MaxLen: 3, Rooted: 0.2}) {
		e, err := pathexpr.Parse(w)
		if err != nil {
			b.Fatal(err)
		}
		if !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			fups = append(fups, e)
		}
	}
	if len(fups) == 0 {
		b.Fatal("workload produced no supportable expressions")
	}
	return g, fups
}

// BenchmarkShardFreeze compares the freeze wall-clock a snapshot publish
// pays. A monolithic engine freezes the whole-corpus index on every
// publish; a sharded engine freezes only the shard the refinement dirtied.
// The mono case times the full freeze; each shards-N case times the freeze
// of one shard, rotating across the shards so ns/op is the average
// per-publish cost at that shard count. Indexes are built and refined
// outside the timer.
func BenchmarkShardFreeze(b *testing.B) {
	g, fups := benchCorpus(b)

	b.Run("mono", func(b *testing.B) {
		ms := core.NewMStar(g)
		for _, e := range fups {
			ms.Support(e)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ms.Freeze()
		}
	})

	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			parts, err := shard.Partition(g, n)
			if err != nil {
				b.Fatal(err)
			}
			indexes := make([]*core.MStar, len(parts))
			for i, sh := range parts {
				ms := core.NewMStar(sh.Local())
				for _, e := range fups {
					if sh.Covers(e) {
						ms.Support(e)
					}
				}
				indexes[i] = ms
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = indexes[i%len(indexes)].Freeze()
			}
		})
	}
}

// BenchmarkShardedServing measures single-goroutine query latency through
// the scatter-gather path at increasing shard counts, against the
// monolithic engine on the same corpus and workload.
func BenchmarkShardedServing(b *testing.B) {
	g, fups := benchCorpus(b)
	queries := fups

	b.Run("mono", func(b *testing.B) {
		en := mustNew(b, g, Options{Parallelism: 1})
		for _, e := range queries {
			en.Support(e)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = en.Query(queries[i%len(queries)])
		}
	})

	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			en := mustSharded(b, g, ShardedOptions{Shards: n, Parallelism: 1})
			for _, e := range queries {
				en.Support(e)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = en.Query(queries[i%len(queries)])
			}
		})
	}
}

// BenchmarkShardedSupportNoop times the already-supported Support path —
// route to the covering shards, registry hit, no clone, no freeze. This is
// the steady-state cost the tuner pays every epoch once the hot set has
// been promoted.
func BenchmarkShardedSupportNoop(b *testing.B) {
	g, fups := benchCorpus(b)
	en := mustSharded(b, g, ShardedOptions{Shards: 4, Parallelism: 1})
	for _, e := range fups {
		en.Support(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Support(fups[i%len(fups)])
	}
}

// BenchmarkShardedMerge isolates the hot k-way merge on pre-split answers.
func BenchmarkShardedMerge(b *testing.B) {
	parts := make([]query.Result, 4)
	for i := range parts {
		ids := make([]graph.NodeID, 4096)
		for j := range ids {
			ids[j] = graph.NodeID(j*4 + i)
		}
		parts[i] = query.Result{Answer: ids, Precise: true}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mergeResults(parts)
	}
}
