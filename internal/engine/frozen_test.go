package engine

import (
	"testing"

	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

// The engine must serve every query from a frozen view that is an exact
// flattening of the published mutable index, across refinement generations,
// and reuse untouched frozen components between generations.
func TestEngineFrozenServing(t *testing.T) {
	g := gtest.RandomShallow(11, 160, 5)
	en := mustNew(t, g, Options{Parallelism: 2})

	if en.FrozenSnapshot() == nil {
		t.Fatal("no frozen snapshot at generation 0")
	}
	if err := en.FrozenSnapshot().CheckAgainst(en.Snapshot()); err != nil {
		t.Fatalf("generation 0: %v", err)
	}

	published := 0
	for _, w := range gtest.RandomWorkload(12, g, gtest.WorkloadOptions{Size: 25, MaxLen: 3}) {
		e, err := pathexpr.Parse(w)
		if err != nil {
			t.Fatal(err)
		}

		want := en.Eval(e)
		got := en.Query(e).Answer
		if len(got) != len(want) {
			t.Fatalf("%q: engine answer %v, ground truth %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: engine answer %v, ground truth %v", w, got, want)
			}
		}

		if e.HasWildcard() || e.RequiredK() == pathexpr.Unbounded {
			continue
		}
		prevFz, prevMs := en.FrozenSnapshot(), en.Snapshot()
		if en.Support(e) {
			published++
			fz, ms := en.FrozenSnapshot(), en.Snapshot()
			if err := fz.CheckAgainst(ms); err != nil {
				t.Fatalf("%q: generation %d: %v", w, en.Generation(), err)
			}
			// Components whose version is unchanged must be carried over
			// from the previous frozen snapshot, not re-frozen.
			for i := 0; i < prevFz.NumComponents(); i++ {
				if ms.Component(i).Version() == prevMs.Component(i).Version() &&
					fz.Component(i) != prevFz.Component(i) {
					t.Errorf("%q: component %d re-frozen although unchanged", w, i)
				}
			}
		}
	}
	if published == 0 {
		t.Fatal("workload triggered no publishes; test is vacuous")
	}
	if en.Generation() != uint64(published) {
		t.Errorf("generation %d after %d publishes", en.Generation(), published)
	}
}

// A FUP that is already precise, or whose refinement is capped into a
// no-op, must not publish a new generation (version-vector no-op check).
func TestEngineSkipsNoopPublish(t *testing.T) {
	g := gtest.RandomShallow(21, 120, 4)
	en := mustNew(t, g, Options{})

	var fup *pathexpr.Expr
	for _, w := range gtest.RandomWorkload(22, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3}) {
		e, err := pathexpr.Parse(w)
		if err != nil {
			t.Fatal(err)
		}
		if !e.HasWildcard() && e.RequiredK() >= 1 && e.RequiredK() != pathexpr.Unbounded {
			fup = e
			break
		}
	}
	if fup == nil {
		t.Skip("no supportable FUP in workload")
	}
	if !en.Support(fup) {
		t.Skip("FUP already precise at I0")
	}
	gen := en.Generation()
	if en.Support(fup) {
		t.Error("supporting an already-supported FUP published a snapshot")
	}
	if en.Generation() != gen {
		t.Error("generation advanced on a skipped publish")
	}
}
