package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/datagen"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

var testQueries = []string{
	"//open_auction/bidder/personref",
	"//person/name",
	"//item/description",
	"//closed_auction/price",
	"//open_auction/bidder/personref/person",
	"//person/watches/watch",
}

// TestConcurrentReadersOneRefiner is the acceptance test for the snapshot
// scheme: 8 reader goroutines hammer Query while one writer applies
// Support refinements, and every answer must equal the ground truth at all
// times. Run under -race.
func TestConcurrentReadersOneRefiner(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	en := mustNew(t, g, Options{Parallelism: 4})

	exprs := make([]*pathexpr.Expr, len(testQueries))
	truth := make([][]int, len(testQueries))
	for i, s := range testQueries {
		exprs[i] = mustParse(s)
		ans := en.Eval(exprs[i])
		truth[i] = make([]int, len(ans))
		for j, o := range ans {
			truth[i][j] = int(o)
		}
	}
	check := func(qi int, res query.Result) bool {
		if len(res.Answer) != len(truth[qi]) {
			return false
		}
		for j, o := range res.Answer {
			if int(o) != truth[qi][j] {
				return false
			}
		}
		return true
	}

	const readers = 8
	const iterations = 150
	var wg sync.WaitGroup
	errc := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				qi := (r + it) % len(exprs)
				if res := en.Query(exprs[qi]); !check(qi, res) {
					select {
					case errc <- testQueries[qi]:
					default:
					}
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for pass := 0; pass < 2; pass++ {
			for _, e := range exprs {
				en.Support(e)
			}
		}
	}()

	wg.Wait()
	select {
	case q := <-errc:
		t.Fatalf("reader observed a wrong answer for %s", q)
	default:
	}

	if en.Generation() == 0 {
		t.Fatal("no snapshot was ever published")
	}
	for i, e := range exprs {
		res := en.Query(e)
		if !res.Precise {
			t.Errorf("%s still imprecise after refinement", testQueries[i])
		}
		if !check(i, res) {
			t.Errorf("%s wrong answer after refinement", testQueries[i])
		}
	}

	st := en.Stats()
	if st.Queries < readers*iterations {
		t.Errorf("queries served = %d, want >= %d", st.Queries, readers*iterations)
	}
	if st.SnapshotPublishes != st.Refinements || st.SnapshotPublishes == 0 {
		t.Errorf("publishes = %d, refinements = %d", st.SnapshotPublishes, st.Refinements)
	}
	if st.Generation != st.SnapshotPublishes {
		t.Errorf("generation = %d, publishes = %d", st.Generation, st.SnapshotPublishes)
	}
}

// TestConcurrentReadersCyclicGraph repeats the readers×refiner check on a
// random cyclic graph (reference edges), where refinement takes the
// regrouping paths.
func TestConcurrentReadersCyclicGraph(t *testing.T) {
	g := gtest.Random(7, 3000, 10, 0.15)
	en := mustNew(t, g, Options{})
	exprs := []*pathexpr.Expr{
		pathexpr.FromLabels([]string{"l1", "l2"}),
		pathexpr.FromLabels([]string{"l3", "l4", "l5"}),
		pathexpr.FromLabels([]string{"l0", "l1", "l2", "l3"}),
	}
	truth := make([][]int, len(exprs))
	for i, e := range exprs {
		for _, o := range en.Eval(e) {
			truth[i] = append(truth[i], int(o))
		}
	}

	var wg sync.WaitGroup
	fail := make(chan int, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < 100; it++ {
				qi := (r + it) % len(exprs)
				res := en.Query(exprs[qi])
				if len(res.Answer) != len(truth[qi]) {
					select {
					case fail <- qi:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, e := range exprs {
			en.Support(e)
		}
	}()
	wg.Wait()
	select {
	case qi := <-fail:
		t.Fatalf("wrong answer for query %d", qi)
	default:
	}
}

func TestQueryCtx(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 2)
	en := mustNew(t, g, Options{})
	e := mustParse("//open_auction/bidder/personref")

	res, err := en.QueryCtx(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) == 0 {
		t.Fatal("no answer")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := en.QueryCtx(ctx, e); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := en.Stats(); st.Canceled == 0 {
		t.Error("canceled counter did not advance")
	}
}

func TestSupportSkipsAndNoops(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 3)
	en := mustNew(t, g, Options{})
	e := mustParse("//open_auction/bidder")

	if !en.Support(e) {
		t.Fatal("first Support should publish")
	}
	gen := en.Generation()
	if en.Support(e) {
		t.Fatal("second Support of a precise FUP should be a no-op")
	}
	if en.Generation() != gen {
		t.Fatal("no-op Support changed the generation")
	}
	// Descendant-axis FUPs cannot be refined: no publish.
	if en.Support(mustParse("//person//watch")) {
		t.Fatal("descendant-axis Support should be a no-op")
	}
	st := en.Stats()
	if st.RefinesSkipped < 2 {
		t.Errorf("refines skipped = %d, want >= 2", st.RefinesSkipped)
	}
}

// TestMaxKCapsComponents verifies the resolution cap flows from Options
// through refinement.
func TestMaxKCapsComponents(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 4)
	en := mustNew(t, g, Options{MStar: core.MStarOptions{MaxK: 2}})
	e := mustParse("//open_auction/bidder/personref/person/name")
	en.Support(e)
	if n := en.Snapshot().NumComponents(); n > 3 {
		t.Fatalf("components = %d, want <= 3 under MaxK=2", n)
	}
}

func TestRegisterAndQueryNamed(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 5)
	en := mustNew(t, g, Options{})
	e := mustParse("//open_auction/bidder")

	en.Register("a2", query.AsQuerier(baseline.AK(g, 2)))
	res, err := en.QueryNamed("a2", e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Answer, en.Eval(e)) {
		t.Fatal("static index answer mismatch")
	}
	if _, err := en.QueryNamed("missing", e); err == nil {
		t.Fatal("unknown name should error")
	}
	en.Register("a2", nil)
	if _, err := en.QueryNamed("a2", e); err == nil {
		t.Fatal("unregistered name should error")
	}
}

func TestStatsRendering(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 6)
	en := mustNew(t, g, Options{})
	e := mustParse("//person/name")
	en.Query(e)
	en.Support(e)
	out := en.Stats().String()
	for _, want := range []string{"engine stats", "queries", "refinements", "latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats dump missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotImmutability: a snapshot captured before refinement must not
// change when the engine refines.
func TestSnapshotImmutability(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 7)
	en := mustNew(t, g, Options{})
	e := mustParse("//open_auction/bidder/personref")

	old := en.Snapshot()
	oldNodes := old.Finest().NumNodes()
	oldComps := old.NumComponents()
	if !en.Support(e) {
		t.Fatal("Support should publish")
	}
	if old.Finest().NumNodes() != oldNodes || old.NumComponents() != oldComps {
		t.Fatal("published refinement mutated the old snapshot")
	}
	if en.Snapshot() == old {
		t.Fatal("snapshot pointer did not change on publish")
	}
}

// New must refuse plainly invalid options with an error wrapping the
// sentinel, and accept the zero value (which means "all defaults").
func TestOptionsValidation(t *testing.T) {
	g := gtest.Random(1, 60, 5, 0.1)
	bad := []struct {
		name string
		opts Options
		// wantAdapt: the error must ALSO wrap adapt.ErrInvalidConfig — the
		// double-%w in Options.Validate keeps both sentinels reachable.
		wantAdapt bool
	}{
		{name: "negative parallelism", opts: Options{Parallelism: -1}},
		{name: "negative mstar parallelism", opts: Options{MStar: core.MStarOptions{Parallelism: -2}}},
		{name: "negative maxk", opts: Options{MStar: core.MStarOptions{MaxK: -1}}},
		{name: "unknown strategy", opts: Options{MStar: core.MStarOptions{Strategy: "zigzag"}}},
		{name: "static strategy reserved", opts: Options{MStar: core.MStarOptions{Strategy: "static"}}},
		{name: "bad autotune topk", opts: Options{AutoTune: &adapt.Config{TopK: -5}}, wantAdapt: true},
		{name: "bad autotune interval", opts: Options{AutoTune: &adapt.Config{Interval: -time.Second}}, wantAdapt: true},
	}
	for _, tc := range bad {
		en, err := New(g, tc.opts)
		if err == nil {
			en.Close()
			t.Errorf("%s: New accepted %+v", tc.name, tc.opts)
			continue
		}
		if !errors.Is(err, errInvalidOption) {
			t.Errorf("%s: error %v does not wrap errInvalidOption", tc.name, err)
		}
		if tc.wantAdapt && !errors.Is(err, adapt.ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap adapt.ErrInvalidConfig", tc.name, err)
		}
	}
	en, err := New(g, Options{})
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	en.Close()
	// Negative Cooldown is documented as "disable cooldowns", not a bug.
	cfg := adapt.Config{Cooldown: -1}
	en, err = New(g, Options{AutoTune: &cfg})
	if err != nil {
		t.Fatalf("negative Cooldown (documented disable) rejected: %v", err)
	}
	en.Close()
}
