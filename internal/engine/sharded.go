package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
	"mrx/internal/shard"
)

// ShardedOptions configures a Sharded engine.
type ShardedOptions struct {
	// Shards is the desired shard count; the actual count is clamped to the
	// number of weakly-connected components in the data graph (a component
	// is indivisible). Values <= 0 default to runtime.GOMAXPROCS(0).
	Shards int

	// FreezeWorkers bounds the worker pool that runs shard freezes — the
	// initial freeze fan-out in NewSharded. Values <= 0 default to
	// runtime.GOMAXPROCS(0). The served snapshots are byte-identical for
	// every worker count; only wall-clock changes.
	FreezeWorkers int

	// MStar configures every shard-local M*(k)-index. A zero
	// MStar.Parallelism inherits the engine's Parallelism.
	MStar core.MStarOptions

	// Parallelism bounds the validation worker pool per query, divided
	// across the shards a query scatters to. Values <= 0 default to
	// runtime.GOMAXPROCS(0).
	Parallelism int

	// AutoTune enables adaptive tuning exactly as Options.AutoTune does;
	// promotions and retirements fan out to the owning shards.
	AutoTune *adapt.Config

	// Persist, when non-nil, makes every shard disk-resident: shard i
	// publishes each of its generations atomically to Dir/shard-NNN.mrx
	// and serves from the trusted zero-copy remapping. Shards publish
	// independently — a refinement republishes only the shard it touched.
	// NewSharded fails if any shard's initial publish fails; runtime
	// failures degrade that shard's generation to heap serving and count in
	// StatsSnapshot.PersistErrors (and per shard in ShardStats).
	Persist *PersistOptions
}

// Validate rejects plainly invalid options with a wrapped error, mirroring
// Options.Validate; zero values mean "unset" and select the documented
// defaults. Negative shard or worker counts are caller bugs, not requests
// for the default.
func (o ShardedOptions) Validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("engine: %w: Shards %d (zero means GOMAXPROCS)", errInvalidOption, o.Shards)
	}
	if o.FreezeWorkers < 0 {
		return fmt.Errorf("engine: %w: FreezeWorkers %d (zero means GOMAXPROCS)", errInvalidOption, o.FreezeWorkers)
	}
	return Options{MStar: o.MStar, AutoTune: o.AutoTune, Parallelism: o.Parallelism, Persist: o.Persist}.Validate()
}

// Sharded serves structural-index queries over a data graph partitioned
// into shard-local M*(k)-indexes (package shard). Each shard owns an
// independent generation-numbered snapshot behind its own write lock, so
// refinements on different shards proceed concurrently and a publish swaps
// one shard's atomic pointer without touching the rest. Queries scatter to
// the shards that can match (shard.Covers), evaluate each shard-local
// frozen snapshot — in parallel when more than one shard is involved — and
// gather the disjoint per-shard answers into one globally sorted Result.
//
// Weak components never share an expression instance, so the union of
// shard answers equals the monolithic Engine's answer exactly; package
// difftest cross-checks this continuously. The zero Sharded is not usable;
// construct with NewSharded.
type Sharded struct {
	data    *graph.Graph
	di      *query.DataIndex
	workers int

	shards []*shard.State

	// perShardQueries counts shard-local evaluations (not client queries:
	// one scattered query bumps every shard it touches).
	perShardQueries []atomic.Uint64

	tuner *adapt.Tuner

	stats stats
}

// The sharded engine serves through the same interface as the monolithic
// one; the network layer cannot tell them apart.
var _ query.ContextQuerier = (*Sharded)(nil)
var _ adapt.Target = (*Sharded)(nil)

// NewSharded partitions g along weak component boundaries (see
// shard.Partition), builds one M*(k)-index per shard, and freezes them
// across a bounded worker pool. It fails with a wrapped error when opts is
// plainly invalid.
func NewSharded(g *graph.Graph, opts ShardedOptions) (*Sharded, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.FreezeWorkers <= 0 {
		opts.FreezeWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	opts.MStar = opts.MStar.WithParallelism(opts.Parallelism)
	parts, err := shard.Partition(g, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("engine: sharded: %w", err)
	}
	en := &Sharded{
		data:            g,
		di:              query.NewDataIndex(g),
		workers:         opts.Parallelism,
		shards:          make([]*shard.State, len(parts)),
		perShardQueries: make([]atomic.Uint64, len(parts)),
	}
	for i, sh := range parts {
		en.shards[i] = shard.NewState(sh, opts.MStar)
		if opts.Persist != nil {
			en.shards[i].EnablePersist(
				filepath.Join(opts.Persist.Dir, fmt.Sprintf("shard-%03d.mrx", i)),
				opts.Persist.Compact)
		}
	}
	en.freezeAll(opts.FreezeWorkers)
	if opts.Persist != nil {
		// The initial publishes fail hard, mirroring the monolithic engine:
		// a disk-resident engine that cannot write its directory is
		// misconfigured, not degraded.
		for i, st := range en.shards {
			if err := st.PersistErr(); err != nil {
				return nil, fmt.Errorf("engine: sharded: persist shard %d: %w", i, err)
			}
		}
	}
	if opts.AutoTune != nil {
		en.tuner = adapt.NewTuner(en, *opts.AutoTune)
	}
	return en, nil
}

// freezeAll runs the initial per-shard freezes across at most workers
// goroutines. Shard freezes are independent, so the worker count changes
// wall-clock only, never the published snapshots.
func (en *Sharded) freezeAll(workers int) {
	if workers > len(en.shards) {
		workers = len(en.shards)
	}
	if workers <= 1 {
		for _, st := range en.shards {
			st.FreezeInitial()
		}
		return
	}
	// Strided work split: worker w freezes shards w, w+workers, ... Shard
	// freezes are independent, so any split yields the same snapshots.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(en.shards); i += workers {
				en.shards[i].FreezeInitial()
			}
		}(w)
	}
	wg.Wait()
}

// Data returns the underlying (global) data graph.
func (en *Sharded) Data() *graph.Graph { return en.data }

// DataIndex returns the shared ground-truth evaluator over the global
// graph; it is safe for concurrent use.
func (en *Sharded) DataIndex() *query.DataIndex { return en.di }

// Eval computes the exact answer of e on the global data graph (ground
// truth; no index, no cost metric).
func (en *Sharded) Eval(e *pathexpr.Expr) []graph.NodeID { return en.di.Eval(e) }

// NumShards returns the number of shards actually built (at most
// ShardedOptions.Shards, clamped to the component count).
func (en *Sharded) NumShards() int { return len(en.shards) }

// ShardState returns shard i's snapshot lifecycle; difftest and tests use
// it to validate shard-local indexes directly.
func (en *Sharded) ShardState(i int) *shard.State { return en.shards[i] }

// Generation reports the total number of shard snapshots published since
// construction — the sum of the per-shard generation counters (one global
// number keeps the serving layer's generation gauge meaningful).
func (en *Sharded) Generation() uint64 {
	var g uint64
	for _, st := range en.shards {
		g += st.Generation()
	}
	return g
}

// Query evaluates e by scattering to the covering shards and gathering
// their answers. It is safe to call from any number of goroutines.
func (en *Sharded) Query(e *pathexpr.Expr) query.Result {
	return en.query(e, query.ValidateOpts{Workers: en.workers})
}

// QueryCtx is Query with cancellation, making Sharded a
// query.ContextQuerier: validation on every shard polls ctx and aborts once
// it is done, returning ctx's error.
func (en *Sharded) QueryCtx(ctx context.Context, e *pathexpr.Expr) (query.Result, error) {
	if err := ctx.Err(); err != nil {
		en.stats.canceled.Add(1)
		return query.Result{}, err
	}
	res := en.query(e, query.ValidateOpts{
		Workers: en.workers,
		Stop:    func() bool { return ctx.Err() != nil },
	})
	if err := ctx.Err(); err != nil {
		en.stats.canceled.Add(1)
		return query.Result{}, err
	}
	return res, nil
}

// query is the scatter-gather read path: route (prune shards that cannot
// match), evaluate each routed shard's frozen snapshot — concurrently when
// the route has more than one shard, dividing the validation worker budget
// across them — and merge the shard-local results into one global Result.
func (en *Sharded) query(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	start := time.Now()
	route := en.route(e)
	var res query.Result
	var strategy core.Strategy
	switch len(route) {
	case 0:
		// No shard can match (an unknown label, or a rooted expression whose
		// first label is absent from the root's shard): the answer is empty
		// and provably needed no validation.
		res = query.Result{Precise: true}
		strategy = strategyNames[0]
	case 1:
		res, strategy = en.queryShard(route[0], e, opt)
	default:
		parts := make([]query.Result, len(route))
		picks := make([]core.Strategy, len(route))
		// Divide the validation budget so a scattered query uses about the
		// same total worker count as a monolithic one.
		per := opt
		per.Workers = opt.Workers / len(route)
		if per.Workers < 1 {
			per.Workers = 1
		}
		var wg sync.WaitGroup
		for i := range route {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				parts[i], picks[i] = en.queryShard(route[i], e, per)
			}(i)
		}
		wg.Wait()
		// Every shard runs the same configured strategy; label the merged
		// result with the first shard's resolved pick.
		strategy = picks[0]
		res = mergeResults(parts)
	}
	elapsed := time.Since(start)
	en.stats.recordQuery(strategy, res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise, elapsed)
	if t := en.tuner; t != nil {
		t.Observe(e, elapsed, res.Cost.DataNodes, res.Precise)
	}
	return res
}

// route returns the indexes of the shards that can possibly answer e, in
// shard order.
func (en *Sharded) route(e *pathexpr.Expr) []int {
	out := make([]int, 0, len(en.shards))
	for i, st := range en.shards {
		if st.Shard().Covers(e) {
			out = append(out, i)
		}
	}
	return out
}

// queryShard evaluates e on one shard's frozen snapshot and rewrites the
// answer into global node IDs.
func (en *Sharded) queryShard(i int, e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, core.Strategy) {
	st := en.shards[i]
	en.perShardQueries[i].Add(1)
	res, strategy := st.Snapshot().Serving().QueryOpts(e, opt)
	toGlobalAnswer(&res, st.Shard())
	return res, strategy
}

// toGlobalAnswer maps a shard-local answer to global node IDs in place.
// The mapping is monotone ascending, so the answer stays sorted; the
// shard-local index-node views (Targets/FrozenTargets) are dropped — they
// are meaningless outside their shard.
//
//mrx:hotpath sharded scatter-gather merge path
func toGlobalAnswer(res *query.Result, sh *shard.Shard) {
	for i, v := range res.Answer {
		res.Answer[i] = sh.ToGlobal(v)
	}
	res.Targets = nil
	res.FrozenTargets = nil
}

// mergeResults gathers per-shard results into one global Result: a k-way
// merge of the (disjoint, globally sorted) shard answers, summed costs,
// and precision only when every shard was precise.
//
//mrx:hotpath sharded scatter-gather merge path
func mergeResults(parts []query.Result) query.Result {
	out := query.Result{Precise: true}
	total := 0
	for i := range parts {
		total += len(parts[i].Answer)
		out.Cost.Add(parts[i].Cost)
		if !parts[i].Precise {
			out.Precise = false
		}
	}
	merged := make([]graph.NodeID, 0, total)
	heads := make([]int, len(parts))
	for len(merged) < total {
		best := -1
		for i := range parts {
			if heads[i] >= len(parts[i].Answer) {
				continue
			}
			if best < 0 || parts[i].Answer[heads[i]] < parts[best].Answer[heads[best]] {
				best = i
			}
		}
		merged = append(merged, parts[best].Answer[heads[best]])
		heads[best]++
	}
	out.Answer = merged
	return out
}

// Support refines every shard e can match on, in shard order, locking only
// one shard at a time: concurrent Support calls for expressions owned by
// different shards do not serialize. It reports whether any shard
// published a new snapshot.
func (en *Sharded) Support(e *pathexpr.Expr) bool {
	published := false
	for _, i := range en.route(e) {
		if en.shards[i].Refine(e, query.ValidateOpts{Workers: en.workers}) {
			published = true
			en.stats.refinements.Add(1)
			en.stats.publishes.Add(1)
		} else {
			en.stats.refinesSkipped.Add(1)
		}
	}
	if !published {
		en.stats.refinesSkipped.Add(1)
	}
	return published
}

// Retire withdraws support for e on every shard that refined it. It
// reports whether any shard published a rebuilt snapshot.
func (en *Sharded) Retire(e *pathexpr.Expr) bool {
	published := false
	for _, st := range en.shards {
		if st.Retire(e) {
			published = true
			en.stats.retirements.Add(1)
			en.stats.publishes.Add(1)
		}
	}
	if !published {
		en.stats.retiresSkipped.Add(1)
	}
	return published
}

// SupportedFUPs returns the union of the shard registries, deduplicated
// and sorted by canonical form. Together with Support and Retire this
// makes Sharded an adapt.Target.
func (en *Sharded) SupportedFUPs() []*pathexpr.Expr {
	var all []*pathexpr.Expr
	for _, st := range en.shards {
		all = append(all, st.Snapshot().MS.SupportedFUPs()...)
	}
	sort.Slice(all, func(a, b int) bool {
		return pathexpr.Canonical(all[a]) < pathexpr.Canonical(all[b])
	})
	out := all[:0]
	for i, e := range all {
		if i == 0 || pathexpr.Canonical(e) != pathexpr.Canonical(all[i-1]) {
			out = append(out, e)
		}
	}
	return out
}

// Tuner returns the adaptive tuner, or nil when ShardedOptions.AutoTune
// was nil.
func (en *Sharded) Tuner() *adapt.Tuner { return en.tuner }

// Close stops and joins the background tuning goroutine, if any; it is
// idempotent and harmless without AutoTune.
func (en *Sharded) Close() {
	if t := en.tuner; t != nil {
		t.Close()
	}
}

// Stats returns a point-in-time copy of the serving counters, including
// one ShardStats entry per shard.
func (en *Sharded) Stats() StatsSnapshot {
	snap := en.stats.snapshot(en.Generation())
	snap.Shards = make([]ShardStats, len(en.shards))
	for i, st := range en.shards {
		sh := st.Shard()
		freezes, last, total := st.FreezeStats()
		snap.Shards[i] = ShardStats{
			Shard:         i,
			Nodes:         sh.NumNodes(),
			Components:    sh.Components(),
			HasRoot:       sh.HasRoot(),
			Generation:    st.Generation(),
			PersistErrors: st.PersistErrors(),
			Queries:       en.perShardQueries[i].Load(),
			Freezes:       freezes,
			LastFreeze:    last,
			TotalFreeze:   total,
		}
		snap.PersistErrors += st.PersistErrors()
	}
	if t := en.tuner; t != nil {
		ts := t.Snapshot()
		snap.AutoTune = &ts
	}
	return snap
}
