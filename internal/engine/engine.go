// Package engine serves structural-index queries to many goroutines
// concurrently while the index keeps adapting to the workload.
//
// The concurrency model is copy-on-write with generation-numbered
// snapshots, split into a mutable write side and an immutable read side.
// Readers never block: Query loads the current snapshot through an atomic
// pointer and evaluates against its frozen M*(k)-index — a CSR-flattened
// core.FrozenMStar that contains no maps at all — lock-free and with
// deterministic traversal order. Writers serialize on a mutex: Support
// clones the current snapshot's mutable index graphs (reusing the Clone
// machinery of package index), applies REFINE* to the private copy,
// re-freezes only the components whose version changed (FreezeReusing),
// and publishes the pair with a single atomic pointer swap that bumps the
// generation. A reader that loaded the old snapshot mid-query finishes
// against arrays no one will ever mutate again; the next query observes
// the refined generation. This realizes the paper's operational loop
// (Figure 5: serve, extract FUPs, refine, repeat) under concurrent load.
//
// Inside a single query, validation of under-refined answers — the dominant
// cost term of the paper's metric — fans out across a bounded worker pool
// (Options.Parallelism, default GOMAXPROCS); see query.ValidateOpts.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Options configures an Engine.
type Options struct {
	// MStar configures the adaptive M*(k)-index the engine serves from
	// (resolution cap, query strategy, per-index validation parallelism).
	// A zero MStar.Parallelism inherits the engine's Parallelism.
	MStar core.MStarOptions

	// Parallelism bounds the validation worker pool per query. Values <= 0
	// default to runtime.GOMAXPROCS(0).
	Parallelism int

	// AutoTune, when non-nil, enables online workload tracking and adaptive
	// tuning (package adapt): every served query feeds a bounded frequency
	// sketch, and a tuner promotes sustained-hot expressions (Support) and
	// retires cooled-off FUPs (Retire) at epoch boundaries. A positive
	// AutoTune.Interval runs epochs from a background goroutine — call
	// Close to stop and join it; a zero Interval leaves epoch stepping to
	// the caller via Tuner().Step(). When AutoTune is nil the serving path
	// carries no tracking cost beyond one nil check.
	AutoTune *adapt.Config

	// Persist, when non-nil, makes the engine disk-resident: every
	// published generation is atomically written to Persist.Dir as an
	// mmapstore snapshot and queries are served from the trusted zero-copy
	// remapping of that file. New fails if the initial publish fails; a
	// republish failure at runtime degrades that generation to heap serving
	// and bumps StatsSnapshot.PersistErrors.
	Persist *PersistOptions
}

// Validate rejects plainly invalid options with a wrapped error. Zero
// values still select the documented defaults (they mean "unset"), but a
// negative worker count, a negative resolution cap, an unknown strategy
// name, or a nonsensical tuner configuration is a caller bug that silent
// defaulting would hide; New refuses to construct an engine from one.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("engine: %w: Parallelism %d (zero means GOMAXPROCS)", errInvalidOption, o.Parallelism)
	}
	if o.MStar.Parallelism < 0 {
		return fmt.Errorf("engine: %w: MStar.Parallelism %d (zero inherits the engine's)", errInvalidOption, o.MStar.Parallelism)
	}
	if o.MStar.MaxK < 0 {
		return fmt.Errorf("engine: %w: MStar.MaxK %d (zero means unlimited)", errInvalidOption, o.MStar.MaxK)
	}
	if o.MStar.Strategy != "" && !validStrategy(o.MStar.Strategy) {
		return fmt.Errorf("engine: %w: unknown strategy %q", errInvalidOption, o.MStar.Strategy)
	}
	if o.AutoTune != nil {
		if err := o.AutoTune.Validate(); err != nil {
			return fmt.Errorf("engine: %w: %w", errInvalidOption, err)
		}
	}
	if o.Persist != nil && o.Persist.Dir == "" {
		return fmt.Errorf("engine: %w: Persist with empty Dir", errInvalidOption)
	}
	return nil
}

// validStrategy reports whether s names one of the M*(k) query-evaluation
// strategies ("static" is the engine's internal label for Register'd
// indexes and is not configurable).
func validStrategy(s core.Strategy) bool {
	for _, n := range strategyNames[:numStrategies-1] {
		if n == s {
			return true
		}
	}
	return false
}

// errInvalidOption is the sentinel wrapped by every Validate failure, so
// callers can errors.Is their way to "the configuration, not the data, was
// bad".
var errInvalidOption = errors.New("invalid option")

// snapshot is one immutable generation of the served index: the mutable
// M*(k)-index refinement state (never mutated once published — the next
// writer clones it), its heap-frozen read-path view, and the view queries
// actually read. Without persistence serve is fz itself. With persistence
// serve is the trusted zero-copy remapping of fz's on-disk publish, while
// fz stays the writer-side chain: the next refinement probes and
// FreezeReusing-shares against heap arrays, never against mapped bytes, so
// a superseded generation's mapping can be released the moment its last
// reader drops it without invalidating anything the successor shares.
type snapshot struct {
	gen   uint64
	ms    *core.MStar
	fz    *core.FrozenMStar
	serve *core.FrozenMStar
}

// Engine owns a data graph plus a set of structural indexes and serves
// queries from many goroutines. See the package comment for the concurrency
// model. The zero Engine is not usable; construct with New.
type Engine struct {
	data    *graph.Graph
	di      *query.DataIndex // shared ground-truth evaluator
	workers int

	mu   sync.Mutex // serializes writers (Support/refinement)
	snap atomic.Pointer[snapshot]

	staticsMu sync.RWMutex
	statics   map[string]query.Querier

	// tuner is non-nil when Options.AutoTune enabled adaptive tuning; the
	// query hot path checks it once per query.
	tuner *adapt.Tuner

	// persist is non-nil when Options.Persist made the engine
	// disk-resident; every publish routes through it.
	persist *persister

	stats stats
}

// The engine is the canonical ContextQuerier: the serving layer consumes
// nothing else of it on the query path.
var _ query.ContextQuerier = (*Engine)(nil)

// New creates an engine serving queries over g through an adaptive
// M*(k)-index initialized at component I0. It fails with a wrapped error
// when opts is plainly invalid (see Options.Validate); zero-valued fields
// select the documented defaults.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.MStar.Parallelism == 0 {
		//mrlint:allow snapshotmut local options value, not a published snapshot
		opts.MStar.Parallelism = opts.Parallelism
	}
	en := &Engine{
		data:    g,
		di:      query.NewDataIndex(g),
		workers: opts.Parallelism,
		statics: make(map[string]query.Querier),
	}
	ms := core.NewMStarOpts(g, opts.MStar)
	fz := ms.Freeze()
	first := &snapshot{ms: ms, fz: fz, serve: fz}
	if opts.Persist != nil {
		en.persist = newPersister(*opts.Persist, persistFile, g, opts.MStar)
		// The initial publish fails hard: an engine configured as
		// disk-resident that cannot write its directory is misconfigured,
		// and silently degrading would hide it until the first restart.
		mapped, err := en.persist.republish(fz)
		if err != nil {
			return nil, err
		}
		first.serve = mapped
	}
	en.snap.Store(first)
	if opts.AutoTune != nil {
		en.tuner = adapt.NewTuner(en, *opts.AutoTune)
	}
	return en, nil
}

// Data returns the underlying data graph.
func (en *Engine) Data() *graph.Graph { return en.data }

// DataIndex returns the engine's shared ground-truth evaluator; it is safe
// for concurrent use.
func (en *Engine) DataIndex() *query.DataIndex { return en.di }

// Snapshot returns the mutable-representation M*(k)-index of the current
// generation. The result is immutable — refinement never mutates a
// published snapshot — so callers may inspect it (sizes, components,
// validation) without coordination.
func (en *Engine) Snapshot() *core.MStar { return en.snap.Load().ms }

// FrozenSnapshot returns the heap-frozen M*(k)-index view of the current
// generation. It is immutable by construction. Under Options.Persist this
// is the canonical writer-side view the on-disk snapshot was encoded from,
// not the mapped view queries read — use ServingSnapshot for that; the two
// answer identically (the difftest suite and the mmapstore round-trip tests
// pin this down byte for byte).
func (en *Engine) FrozenSnapshot() *core.FrozenMStar { return en.snap.Load().fz }

// ServingSnapshot returns the frozen view queries are actually evaluated
// against: the disk-backed zero-copy mapping when Options.Persist is active
// (and the generation's republish succeeded), the heap view otherwise.
func (en *Engine) ServingSnapshot() *core.FrozenMStar { return en.snap.Load().serve }

// Generation reports how many refined snapshots have been published.
func (en *Engine) Generation() uint64 { return en.snap.Load().gen }

// Query evaluates e against the current snapshot with the configured
// strategy, validating under-refined answers across the worker pool. It is
// safe to call from any number of goroutines.
func (en *Engine) Query(e *pathexpr.Expr) query.Result {
	res, _ := en.query(e, query.ValidateOpts{Workers: en.workers})
	return res
}

// QueryCtx is Query with cancellation: validation polls ctx and aborts once
// it is done, returning ctx's error. Traversal of the index graph itself is
// not interruptible (it is the cheap part of the paper's cost metric).
// QueryCtx makes Engine a query.ContextQuerier, the interface the network
// serving layer consumes.
func (en *Engine) QueryCtx(ctx context.Context, e *pathexpr.Expr) (query.Result, error) {
	if err := ctx.Err(); err != nil {
		en.stats.canceled.Add(1)
		return query.Result{}, err
	}
	res, _ := en.query(e, query.ValidateOpts{
		Workers: en.workers,
		Stop:    func() bool { return ctx.Err() != nil },
	})
	if err := ctx.Err(); err != nil {
		en.stats.canceled.Add(1)
		return query.Result{}, err
	}
	return res, nil
}

// query is the shared snapshot read path under Query/QueryCtx/QueryNamed:
// one atomic snapshot load, the frozen strategy dispatch, counter bumps and
// the tracker's sketch probe.
//
//mrx:hotpath engine snapshot read path
func (en *Engine) query(e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, core.Strategy) {
	s := en.snap.Load()
	start := time.Now()
	res, strategy := s.serve.QueryOpts(e, opt)
	elapsed := time.Since(start)
	en.stats.recordQuery(strategy, res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise, elapsed)
	if t := en.tuner; t != nil {
		// The workload hook: one sketch probe with atomic counter bumps, no
		// allocation for already tracked expressions.
		t.Observe(e, elapsed, res.Cost.DataNodes, res.Precise)
	}
	return res, strategy
}

// Register attaches a static (non-adaptive) index under a name, served
// through QueryNamed; registering nil removes the name. Typical use is
// serving an A(k)- or 1-index side by side with the adaptive snapshot for
// comparison traffic.
func (en *Engine) Register(name string, q query.Querier) {
	en.staticsMu.Lock()
	defer en.staticsMu.Unlock()
	if q == nil {
		delete(en.statics, name)
		return
	}
	en.statics[name] = q
}

// QueryNamed evaluates e over the static index registered under name.
func (en *Engine) QueryNamed(name string, e *pathexpr.Expr) (query.Result, error) {
	en.staticsMu.RLock()
	q, ok := en.statics[name]
	en.staticsMu.RUnlock()
	if !ok {
		return query.Result{}, fmt.Errorf("engine: no index registered under %q", name)
	}
	start := time.Now()
	res := q.Query(e)
	en.stats.recordQuery(strategyStatic, res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise, time.Since(start))
	return res, nil
}

// Eval computes the exact answer of e on the data graph through the shared
// DataIndex (ground truth; no index, no cost metric).
func (en *Engine) Eval(e *pathexpr.Expr) []graph.NodeID { return en.di.Eval(e) }

// Support refines the served index so the FUP e is answered precisely,
// without blocking readers: the current snapshot is cloned, REFINE* runs on
// the private copy, and the result is published atomically. Support calls
// serialize with each other. It reports whether a new snapshot was
// published, and is a documented no-op — no probe query, no clone — when
// the expression is already supported: the FUP registry remembers every
// refined expression, refinement is monotone, and the component version
// counters guarantee a republish would be byte-identical (UnchangedSince
// catches the residual cases the registry cannot see, such as a FUP made
// precise as a side effect of refining another).
func (en *Engine) Support(e *pathexpr.Expr) bool {
	en.mu.Lock()
	defer en.mu.Unlock()

	cur := en.snap.Load()
	if cur.ms.HasFUP(e) {
		// Already supported at its (possibly MaxK-capped) resolution.
		en.stats.refinesSkipped.Add(1)
		return false
	}
	res, _ := cur.fz.QueryOpts(e, query.ValidateOpts{Workers: en.workers})
	if res.Precise {
		en.stats.refinesSkipped.Add(1)
		return false
	}
	clone := cur.ms.Clone()
	clone.Refine(e, res.Answer)
	if clone.UnchangedSince(cur.ms) {
		// MaxK cap (or a descendant-axis FUP) made refinement a no-op;
		// don't publish an identical snapshot. Clone preserves component
		// versions and versions only advance on observable mutations, so
		// an unchanged version vector detects this without walking the
		// graphs.
		en.stats.refinesSkipped.Add(1)
		return false
	}
	// Re-freeze only the components the refinement dirtied; untouched ones
	// are shared with the outgoing snapshot.
	fz := clone.FreezeReusing(cur.ms, cur.fz)
	en.publish(&snapshot{gen: cur.gen + 1, ms: clone, fz: fz})
	en.stats.refinements.Add(1)
	return true
}

// publish stores next as the current generation. With persistence enabled
// the heap-frozen view is first atomically republished to disk and next
// serves from the trusted remapping; a republish failure leaves next
// serving the heap view (readers are never left behind the write side) and
// is surfaced through the persistErrors counter. Callers hold en.mu.
func (en *Engine) publish(next *snapshot) {
	next.serve = next.fz
	if en.persist != nil {
		if mapped, err := en.persist.republish(next.fz); err != nil {
			en.stats.persistErrors.Add(1)
		} else {
			next.serve = mapped
		}
	}
	en.snap.Store(next)
	en.stats.publishes.Add(1)
}

// Retire withdraws support for a previously refined FUP by rebuilding the
// index from the registry of surviving expressions (core.Retire) and
// publishing the result as a new generation. Like Support it serializes
// with other writers and never blocks readers. It reports whether a new
// snapshot was published; retiring an expression that was never refined on
// this engine (or one lost to a store round-trip) is a no-op.
func (en *Engine) Retire(e *pathexpr.Expr) bool {
	en.mu.Lock()
	defer en.mu.Unlock()

	cur := en.snap.Load()
	rebuilt, ok := cur.ms.Retire(e)
	if !ok {
		en.stats.retiresSkipped.Add(1)
		return false
	}
	// The rebuild starts from a fresh I0, so no component of the outgoing
	// frozen view can be reused: freeze from scratch.
	en.publish(&snapshot{gen: cur.gen + 1, ms: rebuilt, fz: rebuilt.Freeze()})
	en.stats.retirements.Add(1)
	return true
}

// SupportedFUPs lists the FUPs recorded by the current snapshot's registry,
// sorted by canonical form. Together with Support and Retire this makes
// Engine an adapt.Target.
func (en *Engine) SupportedFUPs() []*pathexpr.Expr {
	return en.snap.Load().ms.SupportedFUPs()
}

// Tuner returns the adaptive tuner, or nil when Options.AutoTune was nil.
// With a zero AutoTune.Interval the caller drives epochs via Tuner().Step().
func (en *Engine) Tuner() *adapt.Tuner { return en.tuner }

// Close stops and joins the background tuning goroutine, if any. It is
// idempotent; an engine without AutoTune (or with manual stepping) needs no
// Close, but calling it is harmless.
func (en *Engine) Close() {
	if t := en.tuner; t != nil {
		t.Close()
	}
}

// Stats returns a point-in-time copy of the serving counters.
func (en *Engine) Stats() StatsSnapshot {
	snap := en.stats.snapshot(en.Generation())
	if t := en.tuner; t != nil {
		ts := t.Snapshot()
		snap.AutoTune = &ts
	}
	return snap
}
