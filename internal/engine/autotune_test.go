package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// manualTuneConfig is the deterministic (Interval == 0) config the
// convergence tests step by hand.
func manualTuneConfig() *adapt.Config {
	return &adapt.Config{
		TopK:         16,
		HotThreshold: 3,
		PromoteAfter: 2,
		DemoteAfter:  2,
		Cooldown:     1,
	}
}

// paperCost is the paper's two-part cost metric for one result.
func paperCost(res query.Result) int { return res.Cost.IndexNodes + res.Cost.DataNodes }

// TestAutoTuneConvergesToStaticOracle drives a stable hot workload through
// an auto-tuned engine and checks that, within a bounded number of epochs,
// every hot query is served as cheaply as by an engine that was statically
// refined for exactly that workload (the oracle), within 10% slack on the
// paper's deterministic cost metric.
func TestAutoTuneConvergesToStaticOracle(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	en := mustNew(t, g, Options{Parallelism: 2, AutoTune: manualTuneConfig()})
	defer en.Close()

	hot := []*pathexpr.Expr{
		mustParse("//open_auction/bidder/personref"),
		mustParse("//person/name"),
		mustParse("//item/description"),
	}

	// The oracle knows the workload up front.
	orc := mustNew(t, g, Options{Parallelism: 2})
	for _, e := range hot {
		orc.Support(e)
	}

	const maxEpochs = 10
	converged := -1
	for epoch := 0; epoch < maxEpochs; epoch++ {
		for i := 0; i < 5; i++ {
			for _, e := range hot {
				en.Query(e)
			}
		}
		en.Tuner().Step()
		precise := true
		for _, e := range hot {
			if !en.Query(e).Precise {
				precise = false
			}
		}
		if precise {
			converged = epoch
			break
		}
	}
	if converged < 0 {
		t.Fatalf("hot set not precise after %d epochs: %+v", maxEpochs, en.Stats().AutoTune)
	}

	for _, e := range hot {
		got, want := paperCost(en.Query(e)), paperCost(orc.Query(e))
		if float64(got) > 1.10*float64(want) {
			t.Errorf("%s: tuned cost %d exceeds 1.10x oracle cost %d", e, got, want)
		}
	}

	// The tuned index must stay size-bounded: no more components than the
	// oracle needed for the same workload (both capped by the deepest FUP).
	if gotC, wantC := en.Snapshot().NumComponents(), orc.Snapshot().NumComponents(); gotC > wantC {
		t.Errorf("tuned index has %d components, oracle needs %d", gotC, wantC)
	}

	st := en.Stats()
	if st.AutoTune == nil || st.AutoTune.Promotions == 0 {
		t.Fatalf("stats missing autotune state: %+v", st.AutoTune)
	}
	if !strings.Contains(st.String(), "autotune") {
		t.Error("rendered stats omit the autotune section")
	}
}

// TestAutoTuneDriftRetires shifts the hot set and checks the tuner retires
// the cooled-off FUPs, shrinking the index back while the new hot set stays
// precise and every answer stays correct.
func TestAutoTuneDriftRetires(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	en := mustNew(t, g, Options{Parallelism: 2, AutoTune: manualTuneConfig()})
	defer en.Close()

	phase1 := mustParse("//open_auction/bidder/personref/person")
	phase2 := mustParse("//person/name")
	truth1, truth2 := en.Eval(phase1), en.Eval(phase2)

	check := func(e *pathexpr.Expr, truth []graph.NodeID) {
		t.Helper()
		res := en.Query(e)
		if len(res.Answer) != len(truth) {
			t.Fatalf("%s: got %d answers, want %d", e, len(res.Answer), len(truth))
		}
		for i, o := range res.Answer {
			if o != truth[i] {
				t.Fatalf("%s: wrong answer at position %d", e, i)
			}
		}
	}

	// Phase 1: make phase1 hot until promoted.
	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 5; i++ {
			check(phase1, truth1)
		}
		en.Tuner().Step()
	}
	if len(en.SupportedFUPs()) == 0 {
		t.Fatal("phase-1 FUP never promoted")
	}
	peak := en.Snapshot().NumComponents()

	// Phase 2: traffic moves entirely to phase2; phase1 must eventually be
	// retired and the component count fall back.
	var retired bool
	for epoch := 0; epoch < 20 && !retired; epoch++ {
		for i := 0; i < 5; i++ {
			check(phase2, truth2)
		}
		en.Tuner().Step()
		retired = true
		for _, e := range en.SupportedFUPs() {
			if pathexpr.Canonical(e) == pathexpr.Canonical(phase1) {
				retired = false
			}
		}
	}
	if !retired {
		t.Fatalf("phase-1 FUP never retired; supported = %v", en.SupportedFUPs())
	}
	st := en.Stats()
	if st.Retirements == 0 {
		t.Fatalf("no retirement recorded: %+v", st)
	}
	if got := en.Snapshot().NumComponents(); got >= peak {
		t.Errorf("retirement did not shrink the index: %d components, peak %d", got, peak)
	}
	// The rebuilt index must still be a valid M*(k)-index and the frozen
	// view must match it exactly.
	if err := en.Snapshot().Validate(true); err != nil {
		t.Fatalf("post-retire invariants: %v", err)
	}
	if err := en.FrozenSnapshot().CheckAgainst(en.Snapshot()); err != nil {
		t.Fatalf("post-retire frozen view: %v", err)
	}
	// Answers unchanged after the rebuild.
	check(phase1, truth1)
	check(phase2, truth2)
}

// TestSupportAlreadySupportedIsNoop pins the registry fast path: a second
// Support of the same FUP does no work and publishes nothing.
func TestSupportAlreadySupportedIsNoop(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	en := mustNew(t, g, Options{})
	e := mustParse("//person/name")

	if !en.Support(e) {
		t.Fatal("first Support published nothing")
	}
	gen := en.Generation()
	skipped := en.Stats().RefinesSkipped
	// Re-support both the same pointer and a fresh parse of the same text:
	// the registry keys by canonical form, not identity.
	if en.Support(e) {
		t.Fatal("re-Support of the same expression published")
	}
	if en.Support(mustParse("//person/name")) {
		t.Fatal("re-Support of an equal expression published")
	}
	if en.Generation() != gen {
		t.Fatalf("generation moved: %d -> %d", gen, en.Generation())
	}
	if got := en.Stats().RefinesSkipped; got != skipped+2 {
		t.Fatalf("refinesSkipped = %d, want %d", got, skipped+2)
	}
}

// TestEngineRetireUnknownIsNoop: retiring an expression that was never
// refined here publishes nothing and is counted as skipped.
func TestEngineRetireUnknownIsNoop(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	en := mustNew(t, g, Options{})
	if en.Retire(mustParse("//person/name")) {
		t.Fatal("Retire of an unsupported expression published")
	}
	st := en.Stats()
	if st.RetiresSkipped != 1 || st.Retirements != 0 || st.Generation != 0 {
		t.Fatalf("stats after no-op retire: %+v", st)
	}
}

// TestAutoTuneRaceStress runs 8 query goroutines against a background tuner
// on a drifting workload; run under -race. Every answer must match ground
// truth regardless of concurrent promotions, retirements and publishes.
func TestAutoTuneRaceStress(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	cfg := manualTuneConfig()
	cfg.Interval = 2 * time.Millisecond
	en := mustNew(t, g, Options{Parallelism: 2, AutoTune: cfg})

	exprs := make([]*pathexpr.Expr, len(testQueries))
	truth := make([][]int, len(testQueries))
	for i, s := range testQueries {
		exprs[i] = mustParse(s)
		ans := en.Eval(exprs[i])
		truth[i] = make([]int, len(ans))
		for j, o := range ans {
			truth[i][j] = int(o)
		}
	}

	const readers = 8
	const iterations = 300
	var wg sync.WaitGroup
	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				// Drift: each goroutine walks the query set so the hot set
				// shifts as iterations advance, exercising promote AND retire
				// under load.
				qi := (r + it/50) % len(exprs)
				res := en.Query(exprs[qi])
				if len(res.Answer) != len(truth[qi]) {
					select {
					case errc <- testQueries[qi]:
					default:
					}
					return
				}
				for j, o := range res.Answer {
					if int(o) != truth[qi][j] {
						select {
						case errc <- testQueries[qi]:
						default:
						}
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	en.Close()
	en.Close() // idempotent

	select {
	case q := <-errc:
		t.Fatalf("reader observed a wrong answer for %s while tuning", q)
	default:
	}
	st := en.Stats()
	if st.AutoTune == nil {
		t.Fatal("autotune stats missing")
	}
	if st.Queries < readers*iterations {
		t.Errorf("queries = %d, want >= %d", st.Queries, readers*iterations)
	}
	// The snapshot chain must still be coherent after the tuner stops.
	if err := en.Snapshot().Validate(true); err != nil {
		t.Fatalf("post-stress invariants: %v", err)
	}
	if err := en.FrozenSnapshot().CheckAgainst(en.Snapshot()); err != nil {
		t.Fatalf("post-stress frozen view: %v", err)
	}
}
