package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
)

func mustSharded(tb testing.TB, g *graph.Graph, o ShardedOptions) *Sharded {
	tb.Helper()
	en, err := NewSharded(g, o)
	if err != nil {
		tb.Fatalf("engine.NewSharded: %v", err)
	}
	return en
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The scatter-gather answer must equal both the monolithic engine's answer
// and the ground truth, before and after refinement, at several shard
// counts.
func TestShardedMatchesMonolithic(t *testing.T) {
	g := gtest.New(21, gtest.Options{Nodes: 600, Labels: 7, RefProb: 0.12, Components: 6})
	workload := gtest.RandomWorkload(22, g, gtest.WorkloadOptions{
		Size: 60, MaxLen: 4, Adversarial: 0.2, Rooted: 0.3, Wildcard: 0.1,
	})
	mono := mustNew(t, g, Options{Parallelism: 2})
	for _, n := range []int{1, 2, 4, 8} {
		sh := mustSharded(t, g, ShardedOptions{Shards: n, Parallelism: 2})
		check := func(stage string) {
			t.Helper()
			for _, w := range workload {
				e := mustParse(w)
				want := mono.Query(e)
				got := sh.Query(e)
				if !sameIDs(got.Answer, want.Answer) {
					t.Fatalf("shards=%d %s: %s: sharded answer %v, monolithic %v",
						n, stage, w, got.Answer, want.Answer)
				}
				if truth := sh.Eval(e); !sameIDs(got.Answer, truth) {
					t.Fatalf("shards=%d %s: %s: sharded answer %v, ground truth %v",
						n, stage, w, got.Answer, truth)
				}
			}
		}
		check("initial")
		// Refine the same prefix of the workload on both engines.
		for _, w := range workload[:20] {
			e := mustParse(w)
			mono.Support(e)
			sh.Support(e)
		}
		check("refined")
		// Retire half of what was refined and re-check.
		for _, w := range workload[:10] {
			e := mustParse(w)
			mono.Retire(e)
			sh.Retire(e)
		}
		check("retired")
	}
}

// Rooted expressions route to the root-owning shard only; expressions whose
// labels exist on one shard only route there; unknown labels route nowhere
// and come back empty and precise.
func TestShardedRouting(t *testing.T) {
	g := twoComponentGraph(t)
	en := mustSharded(t, g, ShardedOptions{Shards: 2, Parallelism: 1})
	if en.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", en.NumShards())
	}
	perShard := func() []uint64 {
		s := en.Stats()
		out := make([]uint64, len(s.Shards))
		for i, sh := range s.Shards {
			out[i] = sh.Queries
		}
		return out
	}
	before := perShard()
	en.Query(mustParse("/a/b")) // rooted: shard 0 only
	en.Query(mustParse("y/q"))  // labels only on shard 1
	after := perShard()
	if after[0]-before[0] != 1 {
		t.Fatalf("root shard evaluated %d times, want 1", after[0]-before[0])
	}
	if after[1]-before[1] != 1 {
		t.Fatalf("second shard evaluated %d times, want 1", after[1]-before[1])
	}
	res := en.Query(mustParse("nosuchlabel"))
	if len(res.Answer) != 0 || !res.Precise {
		t.Fatalf("unknown label: answer %v precise %v, want empty precise", res.Answer, res.Precise)
	}
	if got := perShard(); got[0] != after[0] || got[1] != after[1] {
		t.Fatal("unroutable query still evaluated a shard")
	}
}

// twoComponentGraph builds two weak components with disjoint label sets and
// imprecise-at-I0 length-1 expressions on each: component 0 (with the
// root) answers a/b, component 1 answers y/q.
func twoComponentGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("root") // 0
	b.AddNode("a")    // 1
	b.AddNode("c")    // 2
	b.AddNode("b")    // 3: a/b instance
	b.AddNode("b")    // 4: c/b sibling keeps a/b imprecise at I0
	b.AddEdge(0, 1, graph.TreeEdge)
	b.AddEdge(0, 2, graph.TreeEdge)
	b.AddEdge(1, 3, graph.TreeEdge)
	b.AddEdge(2, 4, graph.TreeEdge)
	b.AddNode("x") // 5: entry of component 1
	b.AddNode("y") // 6
	b.AddNode("z") // 7
	b.AddNode("q") // 8: y/q instance
	b.AddNode("q") // 9: z/q sibling keeps y/q imprecise at I0
	b.AddEdge(5, 6, graph.TreeEdge)
	b.AddEdge(5, 7, graph.TreeEdge)
	b.AddEdge(6, 8, graph.TreeEdge)
	b.AddEdge(7, 9, graph.TreeEdge)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Refinements on disjoint shards must not serialize: while shard 0 holds
// its write lock mid-refinement, a refinement owned by shard 1 completes.
// With a global writer lock this deadlocks (and the test times out), so the
// proof is deterministic, not timing-based.
func TestShardedRefinementsDoNotSerialize(t *testing.T) {
	g := twoComponentGraph(t)
	en := mustSharded(t, g, ShardedOptions{Shards: 2, Parallelism: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	en.ShardState(0).RefineHook = func() {
		close(entered)
		<-release
	}

	doneA := make(chan bool)
	go func() { doneA <- en.Support(mustParse("a/b")) }()
	<-entered // shard 0's write lock is now held mid-refinement

	doneB := make(chan bool)
	go func() { doneB <- en.Support(mustParse("y/q")) }()
	select {
	case ok := <-doneB:
		if !ok {
			t.Error("shard 1 refinement was a no-op")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("refinement on shard 1 serialized behind shard 0's write lock")
	}

	close(release)
	if !<-doneA {
		t.Error("shard 0 refinement was a no-op")
	}
	if g0 := en.ShardState(0).Generation(); g0 != 1 {
		t.Errorf("shard 0 generation %d, want 1", g0)
	}
	if g1 := en.ShardState(1).Generation(); g1 != 1 {
		t.Errorf("shard 1 generation %d, want 1", g1)
	}
}

// shardFingerprint renders every frozen component of every shard to DOT.
// Byte equality of this rendering is the determinism criterion.
func shardFingerprint(t *testing.T, en *Sharded) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < en.NumShards(); i++ {
		fz := en.ShardState(i).Snapshot().FZ
		for c := 0; c < fz.NumComponents(); c++ {
			if err := fz.Component(c).WriteDOT(&buf, "s", 1<<20); err != nil {
				t.Fatalf("shard %d component %d: WriteDOT: %v", i, c, err)
			}
		}
	}
	return buf.Bytes()
}

// Parallel per-shard freeze must be deterministic: the same graph, shard
// count and refinement sequence produce byte-identical shard snapshots for
// every freeze worker count. Run with -race in CI, this also shakes out
// data races in the freeze fan-out.
func TestShardedFreezeDeterministic(t *testing.T) {
	g := gtest.New(31, gtest.Options{Nodes: 500, Labels: 6, RefProb: 0.1, Components: 8})
	workload := gtest.RandomWorkload(32, g, gtest.WorkloadOptions{Size: 12, MaxLen: 3})

	build := func(freezeWorkers int) *Sharded {
		en := mustSharded(t, g, ShardedOptions{Shards: 4, FreezeWorkers: freezeWorkers, Parallelism: 1})
		for _, w := range workload {
			en.Support(mustParse(w))
		}
		return en
	}
	ref := build(1)
	want := shardFingerprint(t, ref)
	for _, workers := range []int{4, 8} {
		en := build(workers)
		if got := shardFingerprint(t, en); !bytes.Equal(got, want) {
			t.Fatalf("FreezeWorkers=%d: shard snapshots differ from sequential freeze", workers)
		}
		// Frozen views must also agree with their mutable twins.
		for i := 0; i < en.NumShards(); i++ {
			snap := en.ShardState(i).Snapshot()
			if err := snap.FZ.CheckAgainst(snap.MS); err != nil {
				t.Fatalf("FreezeWorkers=%d shard %d: %v", workers, i, err)
			}
		}
	}
}

func TestShardedOptionsValidate(t *testing.T) {
	g := gtest.New(3, gtest.Options{Nodes: 20, Labels: 3})
	for _, o := range []ShardedOptions{
		{Shards: -1},
		{FreezeWorkers: -2},
		{Parallelism: -1},
		{MStar: core.MStarOptions{Strategy: "bogus"}},
	} {
		if _, err := NewSharded(g, o); !errors.Is(err, errInvalidOption) {
			t.Errorf("NewSharded(%+v) error %v, want errInvalidOption", o, err)
		}
	}
}

// Stats must carry one entry per shard, shard 0 owning the root, and render
// the per-shard lines.
func TestShardedStats(t *testing.T) {
	g := twoComponentGraph(t)
	en := mustSharded(t, g, ShardedOptions{Shards: 2, Parallelism: 1})
	en.Query(mustParse("a/b"))
	en.Support(mustParse("y/q"))
	s := en.Stats()
	if len(s.Shards) != 2 {
		t.Fatalf("Stats.Shards has %d entries, want 2", len(s.Shards))
	}
	if !s.Shards[0].HasRoot || s.Shards[1].HasRoot {
		t.Fatal("root ownership misreported")
	}
	if s.Shards[1].Generation != 1 {
		t.Fatalf("shard 1 generation %d, want 1 after one refinement", s.Shards[1].Generation)
	}
	if s.Generation != en.Generation() || s.Generation != 1 {
		t.Fatalf("summed generation %d, want 1", s.Generation)
	}
	// Every shard ran its initial freeze; the refined one ran a second.
	if s.Shards[0].Freezes != 1 || s.Shards[1].Freezes != 2 {
		t.Fatalf("freeze counts %d/%d, want 1/2", s.Shards[0].Freezes, s.Shards[1].Freezes)
	}
	text := s.String()
	if !strings.Contains(text, "shard 0") || !strings.Contains(text, "shard 1") {
		t.Fatalf("rendered stats missing shard lines:\n%s", text)
	}
}
