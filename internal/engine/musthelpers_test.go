package engine

import (
	"testing"

	"mrx/internal/graph"
	"mrx/internal/pathexpr"
)

// mustParse parses a fixed test query literal.
func mustParse(s string) *pathexpr.Expr {
	e, err := pathexpr.Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// mustNew constructs an engine from options the test knows are valid.
func mustNew(tb testing.TB, g *graph.Graph, o Options) *Engine {
	tb.Helper()
	en, err := New(g, o)
	if err != nil {
		tb.Fatalf("engine.New: %v", err)
	}
	return en
}
