package engine

import (
	"mrx/internal/pathexpr"
)

// mustParse parses a fixed test query literal.
func mustParse(s string) *pathexpr.Expr {
	e, err := pathexpr.Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}
