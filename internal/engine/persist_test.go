package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mrx/internal/gtest"
	"mrx/internal/mmapstore"
)

// TestEnginePersistServesMapped is the acceptance test for disk-resident
// serving: a persisted engine must serve every query from a mapped view
// that answers exactly like the heap view, and the on-disk file must be
// byte-identical to the heap snapshot's encoding at every generation.
func TestEnginePersistServesMapped(t *testing.T) {
	g := gtest.New(31, gtest.Options{Nodes: 300, Labels: 6, RefProb: 0.15, Components: 3})
	workload := gtest.RandomWorkload(32, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3})
	dir := t.TempDir()
	en := mustNew(t, g, Options{Parallelism: 2, Persist: &PersistOptions{Dir: dir}})
	path := filepath.Join(dir, "mstar.mrx")

	checkDisk := func(stage string) {
		t.Helper()
		// Serving view is the mapped one, distinct from the heap chain...
		if en.ServingSnapshot() == en.FrozenSnapshot() {
			t.Fatalf("%s: serving the heap view, want the mapped view", stage)
		}
		// ...and the disk image is exactly the heap snapshot's encoding.
		var want bytes.Buffer
		if err := mmapstore.Write(&want, en.FrozenSnapshot(), mmapstore.WriteOptions{}); err != nil {
			t.Fatalf("%s: encode heap snapshot: %v", stage, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s: on-disk snapshot differs from the heap snapshot's encoding", stage)
		}
		// Every answer must match ground truth (the engine validates, so the
		// index answer is exact by construction — this proves the mapped
		// arrays are wired correctly).
		for _, w := range workload {
			e := mustParse(w)
			if got, want := en.Query(e).Answer, en.Eval(e); !sameIDs(got, want) {
				t.Fatalf("%s: %s: mapped answer %v, ground truth %v", stage, w, got, want)
			}
		}
	}
	checkDisk("initial")

	published := false
	for _, w := range workload {
		if en.Support(mustParse(w)) {
			published = true
		}
	}
	if !published {
		t.Fatal("no Support call published; workload too weak to test republish")
	}
	checkDisk("refined")

	for _, w := range workload[:5] {
		en.Retire(mustParse(w))
	}
	checkDisk("retired")

	if n := en.Stats().PersistErrors; n != 0 {
		t.Fatalf("PersistErrors = %d, want 0", n)
	}
}

// TestEnginePersistDegradesOnFailure proves a runtime republish failure
// never takes serving down: the generation publishes from the heap, the
// failure is counted, and answers stay exact.
func TestEnginePersistDegradesOnFailure(t *testing.T) {
	g := gtest.New(35, gtest.Options{Nodes: 300, Labels: 6, RefProb: 0.15, Components: 3})
	workload := gtest.RandomWorkload(36, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3})
	dir := t.TempDir()
	en := mustNew(t, g, Options{Parallelism: 2, Persist: &PersistOptions{Dir: dir}})
	path := filepath.Join(dir, "mstar.mrx")

	// Sabotage the publish target: a directory where the snapshot file
	// belongs makes the atomic rename fail (works even when the test runs
	// as root, unlike permission tricks).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}

	published := false
	for _, w := range workload {
		if en.Support(mustParse(w)) {
			published = true
		}
	}
	if !published {
		t.Fatal("no Support call published; workload too weak to test degradation")
	}
	if n := en.Stats().PersistErrors; n == 0 {
		t.Fatal("republish into a blocked path reported no persist errors")
	}
	if en.ServingSnapshot() != en.FrozenSnapshot() {
		t.Fatal("degraded generation is not serving the heap view")
	}
	for _, w := range workload {
		e := mustParse(w)
		if got, want := en.Query(e).Answer, en.Eval(e); !sameIDs(got, want) {
			t.Fatalf("%s: degraded answer %v, ground truth %v", w, got, want)
		}
	}
}

// New must fail hard when the initial publish cannot happen, and Validate
// must reject a Persist block with no directory.
func TestEnginePersistConstructionFailures(t *testing.T) {
	g := gtest.New(39, gtest.Options{Nodes: 50, Labels: 4, RefProb: 0.2})
	if _, err := New(g, Options{Persist: &PersistOptions{Dir: filepath.Join(t.TempDir(), "missing")}}); err == nil {
		t.Fatal("New with an unwritable persist dir succeeded")
	}
	_, err := New(g, Options{Persist: &PersistOptions{}})
	if !errors.Is(err, errInvalidOption) {
		t.Fatalf("New with empty Persist.Dir: %v, want invalid-option", err)
	}
	if _, err := NewSharded(g, ShardedOptions{Persist: &PersistOptions{}}); !errors.Is(err, errInvalidOption) {
		t.Fatal("NewSharded accepted an empty Persist.Dir")
	}
	if _, err := NewSharded(g, ShardedOptions{Persist: &PersistOptions{Dir: filepath.Join(t.TempDir(), "missing")}}); err == nil {
		t.Fatal("NewSharded with an unwritable persist dir succeeded")
	}
}

// TestShardedPersist checks the per-shard publish layout (one snapshot file
// per shard, bound to the shard-local graph) and that scatter-gather over
// mapped shard views matches ground truth across refinement and
// retirement.
func TestShardedPersist(t *testing.T) {
	g := gtest.New(41, gtest.Options{Nodes: 600, Labels: 7, RefProb: 0.12, Components: 6})
	workload := gtest.RandomWorkload(42, g, gtest.WorkloadOptions{Size: 30, MaxLen: 3, Rooted: 0.2})
	dir := t.TempDir()
	en := mustSharded(t, g, ShardedOptions{Shards: 4, Parallelism: 2, Persist: &PersistOptions{Dir: dir, Compact: true}})

	for i := 0; i < en.NumShards(); i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d.mrx", i))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("shard %d published no snapshot: %v", i, err)
		}
		st := en.ShardState(i)
		if st.Snapshot().Serving() == st.Snapshot().FZ {
			t.Fatalf("shard %d serves the heap view, want the mapped view", i)
		}
	}

	check := func(stage string) {
		t.Helper()
		for _, w := range workload {
			e := mustParse(w)
			if got, want := en.Query(e).Answer, en.Eval(e); !sameIDs(got, want) {
				t.Fatalf("%s: %s: sharded mapped answer %v, ground truth %v", stage, w, got, want)
			}
		}
	}
	check("initial")
	for _, w := range workload[:10] {
		en.Support(mustParse(w))
	}
	check("refined")
	for _, w := range workload[:5] {
		en.Retire(mustParse(w))
	}
	check("retired")

	if n := en.Stats().PersistErrors; n != 0 {
		t.Fatalf("PersistErrors = %d, want 0", n)
	}
}
