package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Static serves structural-index queries from one fixed frozen M*(k)
// snapshot — typically a disk-resident view mapped straight off an
// mmapstore file (cmd/mrserve -index-file). It shares the adaptive
// engine's read path (frozen strategy dispatch, bounded validation
// workers, per-strategy latency histograms) but has no write side at all:
// no refinement lock, no snapshot pointer, no generations. The frozen view
// is immutable by construction, so every method is safe for any number of
// goroutines, and a zero-copy mapped view stays resident exactly as long
// as the Static referencing it.
type Static struct {
	data    *graph.Graph
	di      *query.DataIndex
	workers int
	fm      *core.FrozenMStar

	stats stats
}

// Static serves through the same interface as the adaptive engines; the
// network layer cannot tell them apart.
var _ query.ContextQuerier = (*Static)(nil)

// NewStatic builds a read-only engine over the frozen view fm, bound to
// fm's data graph. parallelism bounds the validation worker pool per query;
// values <= 0 default to runtime.GOMAXPROCS(0).
func NewStatic(fm *core.FrozenMStar, parallelism int) (*Static, error) {
	if fm == nil {
		return nil, fmt.Errorf("engine: %w: nil frozen snapshot", errInvalidOption)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	g := fm.Data()
	return &Static{
		data:    g,
		di:      query.NewDataIndex(g),
		workers: parallelism,
		fm:      fm,
	}, nil
}

// Data returns the underlying data graph.
func (sq *Static) Data() *graph.Graph { return sq.data }

// DataIndex returns the shared ground-truth evaluator; it is safe for
// concurrent use.
func (sq *Static) DataIndex() *query.DataIndex { return sq.di }

// FrozenSnapshot returns the frozen view every query reads. A Static has
// exactly one, forever.
func (sq *Static) FrozenSnapshot() *core.FrozenMStar { return sq.fm }

// Eval computes the exact answer of e on the data graph (ground truth; no
// index, no cost metric).
func (sq *Static) Eval(e *pathexpr.Expr) []graph.NodeID { return sq.di.Eval(e) }

// Query evaluates e against the frozen snapshot with its configured
// strategy, validating under-refined answers across the worker pool.
func (sq *Static) Query(e *pathexpr.Expr) query.Result {
	return sq.query(e, query.ValidateOpts{Workers: sq.workers})
}

// QueryCtx is Query with cancellation, making Static a
// query.ContextQuerier: validation polls ctx and aborts once it is done,
// returning ctx's error.
func (sq *Static) QueryCtx(ctx context.Context, e *pathexpr.Expr) (query.Result, error) {
	if err := ctx.Err(); err != nil {
		sq.stats.canceled.Add(1)
		return query.Result{}, err
	}
	res := sq.query(e, query.ValidateOpts{
		Workers: sq.workers,
		Stop:    func() bool { return ctx.Err() != nil },
	})
	if err := ctx.Err(); err != nil {
		sq.stats.canceled.Add(1)
		return query.Result{}, err
	}
	return res, nil
}

// query is the read path shared by Query and QueryCtx: frozen strategy
// dispatch plus counter bumps, mirroring the adaptive engine's hot path
// minus the snapshot load and tuner probe.
//
//mrx:hotpath static frozen read path
func (sq *Static) query(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	start := time.Now()
	res, strategy := sq.fm.QueryOpts(e, opt)
	sq.stats.recordQuery(strategy, res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise, time.Since(start))
	return res
}

// Stats returns a point-in-time copy of the serving counters. Generation is
// always zero: a Static never publishes.
func (sq *Static) Stats() StatsSnapshot { return sq.stats.snapshot(0) }
