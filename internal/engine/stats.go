package engine

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/core"
	"mrx/internal/latstat"
)

// strategyStatic labels queries served from indexes attached with Register,
// which bypass the adaptive snapshot's strategy dispatch.
const strategyStatic core.Strategy = "static"

// numStrategies is the number of histogram slots; keep in sync with
// strategyNames (checked by an init assertion).
const numStrategies = 7

// strategyNames fixes the histogram slots; unknown strategy names fold into
// the last slot.
var strategyNames = [numStrategies]core.Strategy{
	core.StrategyTopDown,
	core.StrategyNaive,
	core.StrategySubpath,
	core.StrategyBottomUp,
	core.StrategyHybrid,
	core.StrategyAuto,
	strategyStatic,
}

func strategySlot(s core.Strategy) int {
	for i, n := range strategyNames {
		if n == s {
			return i
		}
	}
	return len(strategyNames) - 1
}

// stats is the engine's internal counter block; all fields are atomics so
// every serving goroutine can update them without coordination. The latency
// histograms are latstat.Histogram — the same lock-free power-of-two
// machinery the serving layer's admission controller windows over.
type stats struct {
	queries        atomic.Uint64
	preciseQueries atomic.Uint64
	indexVisits    atomic.Uint64
	validations    atomic.Uint64
	canceled       atomic.Uint64

	refinements    atomic.Uint64
	refinesSkipped atomic.Uint64
	retirements    atomic.Uint64
	retiresSkipped atomic.Uint64
	publishes      atomic.Uint64
	persistErrors  atomic.Uint64

	latency [numStrategies]latstat.Histogram
}

func (s *stats) recordQuery(strategy core.Strategy, indexNodes, dataNodes int, precise bool, d time.Duration) {
	s.queries.Add(1)
	if precise {
		s.preciseQueries.Add(1)
	}
	s.indexVisits.Add(uint64(indexNodes))
	s.validations.Add(uint64(dataNodes))
	s.latency[strategySlot(strategy)].Record(d)
}

// LatencySummary condenses one strategy's latency histogram.
type LatencySummary = latstat.Summary

// StatsSnapshot is a point-in-time copy of the engine counters, safe to
// read, print and compare after the fact.
type StatsSnapshot struct {
	// Generation is the number of index snapshots published since New; it
	// increments once per applied refinement.
	Generation uint64
	// Queries counts Query/QueryCtx/QueryNamed calls served.
	Queries uint64
	// PreciseQueries counts queries answered without any validation.
	PreciseQueries uint64
	// IndexNodesVisited and DataNodesValidated accumulate the paper's
	// two-part cost metric over all queries served.
	IndexNodesVisited  uint64
	DataNodesValidated uint64
	// Canceled counts queries aborted by context cancellation.
	Canceled uint64
	// Refinements counts applied (published) refinements; RefinesSkipped
	// counts Support calls that were no-ops (already precise or no change).
	Refinements    uint64
	RefinesSkipped uint64
	// Retirements counts applied (published) FUP retirements;
	// RetiresSkipped counts Retire calls for unregistered expressions.
	Retirements    uint64
	RetiresSkipped uint64
	// SnapshotPublishes counts atomic snapshot swaps (refinements plus
	// retirements; tracked separately so future batched publication stays
	// observable).
	SnapshotPublishes uint64
	// PersistErrors counts generations whose on-disk republish failed under
	// Options.Persist; each such generation served from the heap instead.
	// Zero whenever persistence is disabled.
	PersistErrors uint64
	// Latency summarizes per-strategy query latency.
	Latency map[core.Strategy]LatencySummary
	// AutoTune carries the tuner state when Options.AutoTune is enabled,
	// nil otherwise.
	AutoTune *adapt.Snapshot
	// Shards carries one entry per shard when the snapshot came from a
	// Sharded engine (its Generation is then the sum of the per-shard
	// generations); nil for the monolithic Engine.
	Shards []ShardStats
}

// ShardStats is the per-shard slice of a Sharded engine's StatsSnapshot.
type ShardStats struct {
	// Shard is the shard index, 0..NumShards-1; shard 0 owns the root.
	Shard int
	// Nodes and Components describe the partition: data nodes owned and
	// weak components packed into the shard.
	Nodes      int
	Components int
	// HasRoot marks the shard owning the global root (rooted expressions
	// route only here).
	HasRoot bool
	// Generation counts snapshots this shard published since construction.
	Generation uint64
	// PersistErrors counts this shard's failed on-disk republishes (the
	// shard served those generations from the heap); always zero without
	// ShardedOptions.Persist.
	PersistErrors uint64
	// Queries counts shard-local evaluations; a scattered query bumps every
	// shard it touches, so the sum over shards can exceed client queries.
	Queries uint64
	// Freezes counts freeze runs (initial + refinements + retirements);
	// LastFreeze and TotalFreeze are their wall-clock.
	Freezes     uint64
	LastFreeze  time.Duration
	TotalFreeze time.Duration
}

func (s *stats) snapshot(generation uint64) StatsSnapshot {
	out := StatsSnapshot{
		Generation:         generation,
		Queries:            s.queries.Load(),
		PreciseQueries:     s.preciseQueries.Load(),
		IndexNodesVisited:  s.indexVisits.Load(),
		DataNodesValidated: s.validations.Load(),
		Canceled:           s.canceled.Load(),
		Refinements:        s.refinements.Load(),
		RefinesSkipped:     s.refinesSkipped.Load(),
		Retirements:        s.retirements.Load(),
		RetiresSkipped:     s.retiresSkipped.Load(),
		SnapshotPublishes:  s.publishes.Load(),
		PersistErrors:      s.persistErrors.Load(),
		Latency:            make(map[core.Strategy]LatencySummary),
	}
	for i := range s.latency {
		if sum := s.latency[i].Summary(); sum.Count > 0 {
			out.Latency[strategyNames[i]] = sum
		}
	}
	return out
}

// WriteTo renders the snapshot as an aligned text block (cmd/mrquery -stats
// and the mrbench engine ablation use it).
func (s StatsSnapshot) WriteTo(w io.Writer) (int64, error) {
	var n int64
	pr := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := pr("engine stats (generation %d)\n", s.Generation); err != nil {
		return n, err
	}
	if err := pr("  queries          %10d  (precise %d, canceled %d)\n",
		s.Queries, s.PreciseQueries, s.Canceled); err != nil {
		return n, err
	}
	if err := pr("  cost             %10d index nodes + %d data nodes validated\n",
		s.IndexNodesVisited, s.DataNodesValidated); err != nil {
		return n, err
	}
	if err := pr("  refinements      %10d applied, %d skipped, %d snapshots published\n",
		s.Refinements, s.RefinesSkipped, s.SnapshotPublishes); err != nil {
		return n, err
	}
	if s.Retirements > 0 || s.RetiresSkipped > 0 {
		if err := pr("  retirements      %10d applied, %d skipped\n",
			s.Retirements, s.RetiresSkipped); err != nil {
			return n, err
		}
	}
	if s.PersistErrors > 0 {
		if err := pr("  persist errors   %10d generations served from heap instead of disk\n",
			s.PersistErrors); err != nil {
			return n, err
		}
	}
	names := make([]string, 0, len(s.Latency))
	for name := range s.Latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := s.Latency[name]
		if err := pr("  latency %-9s %10d queries  mean %-9v p50 %-9v p90 %-9v p99 %-9v p999 %-9v max %v\n",
			name, l.Count, l.Mean, l.P50, l.P90, l.P99, l.P999, l.Max); err != nil {
			return n, err
		}
	}
	for _, sh := range s.Shards {
		root := ""
		if sh.HasRoot {
			root = " root"
		}
		if err := pr("  shard %-3d gen %-4d %7d nodes %4d comps%s  %d queries, %d freezes (last %v, total %v)\n",
			sh.Shard, sh.Generation, sh.Nodes, sh.Components, root,
			sh.Queries, sh.Freezes, sh.LastFreeze, sh.TotalFreeze); err != nil {
			return n, err
		}
	}
	if at := s.AutoTune; at != nil {
		if err := pr("  autotune         %10d epochs, %d promotions, %d retires, %d tracked\n",
			at.Epochs, at.Promotions, at.Retires, len(at.Top)); err != nil {
			return n, err
		}
		for i, st := range at.Top {
			if i >= 5 {
				if err := pr("    ... and %d more tracked expressions\n", len(at.Top)-i); err != nil {
					return n, err
				}
				break
			}
			if err := pr("    hot %-40s score %-6d err %-4d validated %d\n",
				st.Key, st.Score, st.Err, st.Validated); err != nil {
				return n, err
			}
		}
		for _, d := range at.LastPlan.Decisions {
			if err := pr("    plan[%d] %-8s %-40s %s (applied=%v)\n",
				at.LastPlan.Epoch, d.Action, d.Key, d.Reason, d.Changed); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// String renders the snapshot as text.
func (s StatsSnapshot) String() string {
	var b writerBuffer
	s.WriteTo(&b)
	return string(b)
}

type writerBuffer []byte

func (b *writerBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
