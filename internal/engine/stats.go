package engine

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"mrx/internal/adapt"
	"mrx/internal/core"
)

// latencyBuckets is the number of power-of-two microsecond buckets in a
// latency histogram: bucket i counts samples in [2^i, 2^(i+1)) µs, so the
// range spans <1µs up to ~2s before the last bucket overflows.
const latencyBuckets = 21

// histogram is a lock-free power-of-two latency histogram.
type histogram struct {
	buckets  [latencyBuckets]atomic.Uint64
	count    atomic.Uint64
	sumMicro atomic.Uint64
	maxMicro atomic.Uint64
}

func (h *histogram) record(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0 for <1µs, i for [2^(i-1), 2^i)
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(us)
	for {
		cur := h.maxMicro.Load()
		if us <= cur || h.maxMicro.CompareAndSwap(cur, us) {
			break
		}
	}
}

// quantile returns the upper bound of the bucket containing the q-quantile
// sample (0 < q <= 1), as a duration. It is an approximation within a factor
// of two, which is what a serving dashboard needs.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < latencyBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(h.maxMicro.Load()) * time.Microsecond
}

func (h *histogram) summary() LatencySummary {
	n := h.count.Load()
	s := LatencySummary{Count: n}
	if n == 0 {
		return s
	}
	s.Mean = time.Duration(h.sumMicro.Load()/n) * time.Microsecond
	s.P50 = h.quantile(0.50)
	s.P90 = h.quantile(0.90)
	s.P99 = h.quantile(0.99)
	s.Max = time.Duration(h.maxMicro.Load()) * time.Microsecond
	return s
}

// strategyStatic labels queries served from indexes attached with Register,
// which bypass the adaptive snapshot's strategy dispatch.
const strategyStatic core.Strategy = "static"

// numStrategies is the number of histogram slots; keep in sync with
// strategyNames (checked by an init assertion).
const numStrategies = 7

// strategyNames fixes the histogram slots; unknown strategy names fold into
// the last slot.
var strategyNames = [numStrategies]core.Strategy{
	core.StrategyTopDown,
	core.StrategyNaive,
	core.StrategySubpath,
	core.StrategyBottomUp,
	core.StrategyHybrid,
	core.StrategyAuto,
	strategyStatic,
}

func strategySlot(s core.Strategy) int {
	for i, n := range strategyNames {
		if n == s {
			return i
		}
	}
	return len(strategyNames) - 1
}

// stats is the engine's internal counter block; all fields are atomics so
// every serving goroutine can update them without coordination.
type stats struct {
	queries        atomic.Uint64
	preciseQueries atomic.Uint64
	indexVisits    atomic.Uint64
	validations    atomic.Uint64
	canceled       atomic.Uint64

	refinements    atomic.Uint64
	refinesSkipped atomic.Uint64
	retirements    atomic.Uint64
	retiresSkipped atomic.Uint64
	publishes      atomic.Uint64

	latency [numStrategies]histogram
}

func (s *stats) recordQuery(strategy core.Strategy, indexNodes, dataNodes int, precise bool, d time.Duration) {
	s.queries.Add(1)
	if precise {
		s.preciseQueries.Add(1)
	}
	s.indexVisits.Add(uint64(indexNodes))
	s.validations.Add(uint64(dataNodes))
	s.latency[strategySlot(strategy)].record(d)
}

// LatencySummary condenses one strategy's latency histogram.
type LatencySummary struct {
	Count                    uint64
	Mean, P50, P90, P99, Max time.Duration
}

// StatsSnapshot is a point-in-time copy of the engine counters, safe to
// read, print and compare after the fact.
type StatsSnapshot struct {
	// Generation is the number of index snapshots published since New; it
	// increments once per applied refinement.
	Generation uint64
	// Queries counts Query/QueryCtx/QueryNamed calls served.
	Queries uint64
	// PreciseQueries counts queries answered without any validation.
	PreciseQueries uint64
	// IndexNodesVisited and DataNodesValidated accumulate the paper's
	// two-part cost metric over all queries served.
	IndexNodesVisited  uint64
	DataNodesValidated uint64
	// Canceled counts queries aborted by context cancellation.
	Canceled uint64
	// Refinements counts applied (published) refinements; RefinesSkipped
	// counts Support calls that were no-ops (already precise or no change).
	Refinements    uint64
	RefinesSkipped uint64
	// Retirements counts applied (published) FUP retirements;
	// RetiresSkipped counts Retire calls for unregistered expressions.
	Retirements    uint64
	RetiresSkipped uint64
	// SnapshotPublishes counts atomic snapshot swaps (refinements plus
	// retirements; tracked separately so future batched publication stays
	// observable).
	SnapshotPublishes uint64
	// Latency summarizes per-strategy query latency.
	Latency map[core.Strategy]LatencySummary
	// AutoTune carries the tuner state when Options.AutoTune is enabled,
	// nil otherwise.
	AutoTune *adapt.Snapshot
}

func (s *stats) snapshot(generation uint64) StatsSnapshot {
	out := StatsSnapshot{
		Generation:         generation,
		Queries:            s.queries.Load(),
		PreciseQueries:     s.preciseQueries.Load(),
		IndexNodesVisited:  s.indexVisits.Load(),
		DataNodesValidated: s.validations.Load(),
		Canceled:           s.canceled.Load(),
		Refinements:        s.refinements.Load(),
		RefinesSkipped:     s.refinesSkipped.Load(),
		Retirements:        s.retirements.Load(),
		RetiresSkipped:     s.retiresSkipped.Load(),
		SnapshotPublishes:  s.publishes.Load(),
		Latency:            make(map[core.Strategy]LatencySummary),
	}
	for i := range s.latency {
		if sum := s.latency[i].summary(); sum.Count > 0 {
			out.Latency[strategyNames[i]] = sum
		}
	}
	return out
}

// WriteTo renders the snapshot as an aligned text block (cmd/mrquery -stats
// and the mrbench engine ablation use it).
func (s StatsSnapshot) WriteTo(w io.Writer) (int64, error) {
	var n int64
	pr := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := pr("engine stats (generation %d)\n", s.Generation); err != nil {
		return n, err
	}
	if err := pr("  queries          %10d  (precise %d, canceled %d)\n",
		s.Queries, s.PreciseQueries, s.Canceled); err != nil {
		return n, err
	}
	if err := pr("  cost             %10d index nodes + %d data nodes validated\n",
		s.IndexNodesVisited, s.DataNodesValidated); err != nil {
		return n, err
	}
	if err := pr("  refinements      %10d applied, %d skipped, %d snapshots published\n",
		s.Refinements, s.RefinesSkipped, s.SnapshotPublishes); err != nil {
		return n, err
	}
	if s.Retirements > 0 || s.RetiresSkipped > 0 {
		if err := pr("  retirements      %10d applied, %d skipped\n",
			s.Retirements, s.RetiresSkipped); err != nil {
			return n, err
		}
	}
	names := make([]string, 0, len(s.Latency))
	for name := range s.Latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := s.Latency[name]
		if err := pr("  latency %-9s %10d queries  mean %-9v p50 %-9v p90 %-9v p99 %-9v max %v\n",
			name, l.Count, l.Mean, l.P50, l.P90, l.P99, l.Max); err != nil {
			return n, err
		}
	}
	if at := s.AutoTune; at != nil {
		if err := pr("  autotune         %10d epochs, %d promotions, %d retires, %d tracked\n",
			at.Epochs, at.Promotions, at.Retires, len(at.Top)); err != nil {
			return n, err
		}
		for i, st := range at.Top {
			if i >= 5 {
				if err := pr("    ... and %d more tracked expressions\n", len(at.Top)-i); err != nil {
					return n, err
				}
				break
			}
			if err := pr("    hot %-40s score %-6d err %-4d validated %d\n",
				st.Key, st.Score, st.Err, st.Validated); err != nil {
				return n, err
			}
		}
		for _, d := range at.LastPlan.Decisions {
			if err := pr("    plan[%d] %-8s %-40s %s (applied=%v)\n",
				at.LastPlan.Epoch, d.Action, d.Key, d.Reason, d.Changed); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// String renders the snapshot as text.
func (s StatsSnapshot) String() string {
	var b writerBuffer
	s.WriteTo(&b)
	return string(b)
}

type writerBuffer []byte

func (b *writerBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
