package engine

import (
	"fmt"
	"path/filepath"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/mmapstore"
)

// PersistOptions makes an engine disk-resident: every published generation
// is atomically republished (write-temp + fsync + rename) as an mmapstore
// snapshot under Dir, and the engine serves queries from the trusted
// zero-copy remapping of that file instead of the heap-frozen view. The
// on-disk file is therefore always a complete, crash-consistent image of
// exactly what the engine is serving, and a restarting process can reopen
// it in O(1) (see mmapstore.Open and cmd/mrserve's -index-file).
type PersistOptions struct {
	// Dir is the directory the snapshot file lives in. The monolithic
	// Engine writes Dir/mstar.mrx; a Sharded engine writes one
	// Dir/shard-NNN.mrx per shard. It must already exist.
	Dir string

	// Compact writes extent arenas varuint-delta-compressed instead of as
	// raw zero-copy arrays, trading open-time decode work for file size
	// (see mmapstore.WriteOptions.CompactExtents).
	Compact bool
}

// persistFile is the monolithic engine's snapshot file name under
// PersistOptions.Dir.
const persistFile = "mstar.mrx"

// persister republishes frozen snapshots to one on-disk path and remaps
// them for serving. The write side serializes under the engine's writer
// lock, so persister itself needs no locking.
type persister struct {
	path string
	wo   mmapstore.WriteOptions
	g    *graph.Graph
	mo   core.MStarOptions
}

func newPersister(p PersistOptions, name string, g *graph.Graph, mo core.MStarOptions) *persister {
	return &persister{
		path: filepath.Join(p.Dir, name),
		wo:   mmapstore.WriteOptions{CompactExtents: p.Compact},
		g:    g,
		mo:   mo,
	}
}

// republish atomically replaces the on-disk snapshot with fz and reopens
// the new file as a trusted zero-copy mapping. Trusted is sound here: the
// bytes were produced by this process one rename ago, and the rename is
// atomic, so the reopened file is exactly what was written. The returned
// view keeps its mapping alive for as long as it is reachable (the engine's
// snapshot pointer); the superseded generation's mapping is released by its
// cleanup once the last reader drops it.
func (p *persister) republish(fz *core.FrozenMStar) (*core.FrozenMStar, error) {
	if err := mmapstore.Publish(p.path, fz, p.wo); err != nil {
		return nil, fmt.Errorf("engine: persist %s: %w", p.path, err)
	}
	snap, err := mmapstore.Open(p.path, p.g, mmapstore.Options{Trusted: true, MStar: p.mo})
	if err != nil {
		return nil, fmt.Errorf("engine: persist %s: reopen: %w", p.path, err)
	}
	return snap.FrozenMStar(), nil
}
