package engine

import (
	"bytes"
	"context"
	"testing"

	"mrx/internal/gtest"
	"mrx/internal/mmapstore"
)

// TestStaticServesMappedSnapshot drives the read-only engine over a
// disk-resident view: freeze an adaptive engine's refined snapshot, round
// it through the mmap format, and serve the mapped view through Static —
// answers must match ground truth, cancellation must work, and the counters
// must move.
func TestStaticServesMappedSnapshot(t *testing.T) {
	g := gtest.New(51, gtest.Options{Nodes: 300, Labels: 6, RefProb: 0.15, Components: 3})
	workload := gtest.RandomWorkload(52, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3})
	en := mustNew(t, g, Options{Parallelism: 2})
	for _, w := range workload[:8] {
		en.Support(mustParse(w))
	}

	var buf bytes.Buffer
	if err := mmapstore.Write(&buf, en.FrozenSnapshot(), mmapstore.WriteOptions{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	snap, err := mmapstore.OpenBytes(buf.Bytes(), g, mmapstore.Options{})
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	sq, err := NewStatic(snap.FrozenMStar(), 2)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}

	for _, w := range workload {
		e := mustParse(w)
		if got, want := sq.Query(e).Answer, sq.Eval(e); !sameIDs(got, want) {
			t.Fatalf("%s: static answer %v, ground truth %v", w, got, want)
		}
		res, err := sq.QueryCtx(context.Background(), e)
		if err != nil {
			t.Fatalf("%s: QueryCtx: %v", w, err)
		}
		if !sameIDs(res.Answer, sq.Eval(e)) {
			t.Fatalf("%s: QueryCtx answer diverged", w)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sq.QueryCtx(ctx, mustParse(workload[0])); err == nil {
		t.Fatal("QueryCtx on a canceled context returned no error")
	}

	st := sq.Stats()
	if st.Queries == 0 || st.Canceled == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
	if st.Generation != 0 {
		t.Fatalf("a Static reported generation %d", st.Generation)
	}
}

func TestNewStaticRejectsNil(t *testing.T) {
	if _, err := NewStatic(nil, 0); err == nil {
		t.Fatal("NewStatic(nil) succeeded")
	}
}
