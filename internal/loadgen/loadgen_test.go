package loadgen

import (
	"errors"
	"testing"
	"time"
)

// gridClock replays a fixed tick grid under virtual time: Now is the run
// start, and Tick delivers exactly the pre-buffered offsets.
type gridClock struct {
	start time.Time
	ticks []time.Duration
}

func (g *gridClock) Now() time.Time { return g.start }

func (g *gridClock) Tick(time.Duration) (<-chan time.Time, func()) {
	ch := make(chan time.Time, len(g.ticks))
	for _, d := range g.ticks {
		ch <- g.start.Add(d)
	}
	close(ch)
	return ch, func() {}
}

func grid(ticks ...time.Duration) *gridClock {
	return &gridClock{start: time.Unix(1000, 0), ticks: ticks}
}

// fullGrid is every period up to and including end.
func fullGrid(period, end time.Duration) *gridClock {
	var ticks []time.Duration
	for d := period; d <= end; d += period {
		ticks = append(ticks, d)
	}
	return grid(ticks...)
}

type call struct{ seq, phase int }

func record(calls *[]call) func(int, int) {
	return func(seq, phase int) { *calls = append(*calls, call{seq, phase}) }
}

// The core property ported from mrload's inline loop: the dispatch total
// depends only on the last tick observed before the deadline, not on how
// many intermediate ticks the runtime dropped. A pristine 1ms grid and a
// grid with almost every tick lost must offer identical load.
func TestRunTickLossImmunity(t *testing.T) {
	cfg := Config{QPS: 1000, Duration: 100 * time.Millisecond}

	var full []call
	nFull, err := Run(fullGrid(time.Millisecond, 100*time.Millisecond), cfg, record(&full))
	if err != nil {
		t.Fatal(err)
	}

	// Heavy tick loss: three surviving ticks, sharing only the final
	// pre-deadline tick with the full grid.
	var sparse []call
	nSparse, err := Run(grid(37*time.Millisecond, 99*time.Millisecond, 100*time.Millisecond),
		cfg, record(&sparse))
	if err != nil {
		t.Fatal(err)
	}

	if nFull != nSparse {
		t.Fatalf("dispatch totals diverge under tick loss: full grid %d, sparse grid %d", nFull, nSparse)
	}
	// 99 ticks strictly before the 100ms deadline at 1000 qps owe 99
	// requests.
	if nFull != 99 {
		t.Fatalf("dispatched %d, want 99", nFull)
	}
	for i, c := range full {
		if c.seq != i {
			t.Fatalf("full grid seq[%d] = %d, want %d", i, c.seq, i)
		}
	}
	for i, c := range sparse {
		if c.seq != i {
			t.Fatalf("sparse grid seq[%d] = %d, want %d", i, c.seq, i)
		}
	}
}

// A dropped span is made up in one deficit batch at the next surviving
// tick, at that tick's owed count — the rate is never silently lowered.
func TestRunCatchUpBurst(t *testing.T) {
	var calls []call
	n, err := Run(grid(50*time.Millisecond, 100*time.Millisecond),
		Config{QPS: 1000, Duration: 100 * time.Millisecond}, record(&calls))
	if err != nil {
		t.Fatal(err)
	}
	// Only the 50ms tick lands before the deadline: one batch of 50.
	if n != 50 {
		t.Fatalf("dispatched %d, want one 50-request catch-up batch", n)
	}
	for i, c := range calls {
		if c.seq != i || c.phase != 0 {
			t.Fatalf("call %d = %+v, want seq %d phase 0", i, c, i)
		}
	}
}

// Phase indices must follow the tick's position in the duration, covering
// every phase on a full grid and never running backwards.
func TestRunPhaseRotation(t *testing.T) {
	var calls []call
	_, err := Run(fullGrid(time.Millisecond, 100*time.Millisecond),
		Config{QPS: 1000, Duration: 100 * time.Millisecond, Phases: 4}, record(&calls))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	last := 0
	for _, c := range calls {
		if c.phase < last {
			t.Fatalf("phase ran backwards: %d after %d", c.phase, last)
		}
		if c.phase >= 4 {
			t.Fatalf("phase %d out of range [0,4)", c.phase)
		}
		last = c.phase
		seen[c.phase] = true
	}
	for p := 0; p < 4; p++ {
		if !seen[p] {
			t.Fatalf("phase %d never dispatched; seen %v", p, seen)
		}
	}
}

// A tick at or past the deadline ends the run without dispatching.
func TestRunStopsAtDeadline(t *testing.T) {
	var calls []call
	n, err := Run(grid(100*time.Millisecond, 200*time.Millisecond),
		Config{QPS: 1000, Duration: 100 * time.Millisecond}, record(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(calls) != 0 {
		t.Fatalf("dispatched %d past the deadline, want 0", n)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero qps", Config{Duration: time.Second}},
		{"negative qps", Config{QPS: -1, Duration: time.Second}},
		{"zero duration", Config{QPS: 1}},
		{"negative duration", Config{QPS: 1, Duration: -time.Second}},
		{"negative phases", Config{QPS: 1, Duration: time.Second, Phases: -1}},
		{"negative tick", Config{QPS: 1, Duration: time.Second, Tick: -time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
			if _, rerr := Run(grid(), tc.cfg, func(int, int) {}); !errors.Is(rerr, ErrInvalidConfig) {
				t.Fatalf("Run() = %v, want ErrInvalidConfig", rerr)
			}
		})
	}
	if err := (Config{QPS: 100, Duration: time.Second}).Validate(); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
}

// The wall clock must drive a real short run to roughly the target total.
func TestRunWallClock(t *testing.T) {
	n, err := Run(nil, Config{QPS: 2000, Duration: 50 * time.Millisecond}, func(int, int) {})
	if err != nil {
		t.Fatal(err)
	}
	// The exact total depends on scheduler jitter; the deficit batch
	// guarantees it never exceeds QPS×Duration and a sane system lands
	// well above zero.
	if n <= 0 || n > 100 {
		t.Fatalf("wall-clock run dispatched %d, want (0, 100]", n)
	}
}
