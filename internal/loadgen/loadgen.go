// Package loadgen is the open-loop dispatcher behind cmd/mrload: it turns
// a target request rate into a stream of send calls on a fixed clock,
// regardless of how slowly the system under test answers, so saturation
// shows up as queueing and shedding on the server rather than as a
// politely slowed client.
//
// The dispatcher is deficit-batched: at every tick it computes how many
// requests the target rate owes since the start (owed = elapsed × QPS /
// 1s) and sends the difference. That makes the offered load immune to tick
// loss — at high rates the runtime drops ticker ticks rather than queue
// them, and a naive one-request-per-tick loop silently under-offers; the
// deficit batch makes dropped ticks up in full at the next tick that does
// arrive. The Clock interface exists so tests can prove exactly that with
// a virtual tick grid (see TestRunTickLossImmunity).
package loadgen

import (
	"errors"
	"fmt"
	"time"
)

// ErrInvalidConfig is wrapped by every Config.Validate failure.
var ErrInvalidConfig = errors.New("loadgen: invalid config")

// Clock abstracts the dispatcher's time source: the wall clock in
// production, a virtual tick grid in tests.
type Clock interface {
	Now() time.Time
	// Tick returns a channel delivering tick times at period d and a stop
	// function releasing its resources.
	Tick(d time.Duration) (<-chan time.Time, func())
}

// WallClock is the production Clock, backed by time.Ticker.
type WallClock struct{}

// Now returns the wall time.
func (WallClock) Now() time.Time { return time.Now() }

// Tick returns a time.Ticker channel and its Stop.
func (WallClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// Config bounds one dispatch run. Zero values of Phases and Tick select
// the documented defaults; QPS and Duration must be set.
type Config struct {
	// QPS is the target request rate. It must be positive.
	QPS int

	// Duration is the wall time to dispatch for. It must be positive.
	Duration time.Duration

	// Phases splits Duration into equal workload phases; the current
	// phase index is handed to every send call so the caller can rotate
	// hot sets. Zero means 1; negative is invalid.
	Phases int

	// Tick is the dispatch clock period. Zero means 1ms; negative is
	// invalid. The period bounds burst granularity, not the rate: the
	// deficit batch offers QPS×Duration requests however coarse the grid.
	Tick time.Duration
}

// Validate rejects plainly invalid configurations with an error wrapping
// ErrInvalidConfig.
func (c Config) Validate() error {
	if c.QPS <= 0 {
		return fmt.Errorf("%w: QPS %d (must be positive)", ErrInvalidConfig, c.QPS)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: Duration %v (must be positive)", ErrInvalidConfig, c.Duration)
	}
	if c.Phases < 0 {
		return fmt.Errorf("%w: Phases %d (zero means one phase)", ErrInvalidConfig, c.Phases)
	}
	if c.Tick < 0 {
		return fmt.Errorf("%w: Tick %v (zero means 1ms)", ErrInvalidConfig, c.Tick)
	}
	return nil
}

// withDefaults resolves the zero values that mean "use the default".
func (c Config) withDefaults() Config {
	if c.Phases == 0 {
		c.Phases = 1
	}
	if c.Tick == 0 {
		c.Tick = time.Millisecond
	}
	return c
}

// Run dispatches open-loop at cfg.QPS for cfg.Duration, calling send for
// every owed request with its sequence number and the workload phase it
// falls in. send must not block: the caller owns concurrency (mrload hands
// the request to a bounded goroutine pool and drops when saturated). A nil
// clock means WallClock. Run returns the number of requests dispatched.
//
// The dispatch total is a pure function of the tick times: after the last
// tick before cfg.Duration at elapsed e, exactly e×QPS/1s requests have
// been sent — however many intermediate ticks were dropped.
func Run(clock Clock, cfg Config, send func(seq, phase int)) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = WallClock{}
	}
	phaseLen := cfg.Duration / time.Duration(cfg.Phases)
	if phaseLen <= 0 {
		phaseLen = cfg.Duration
	}

	ticks, stop := clock.Tick(cfg.Tick)
	defer stop()
	start := clock.Now()
	dispatched := 0
	for now := range ticks {
		elapsed := now.Sub(start)
		if elapsed >= cfg.Duration {
			break
		}
		owed := int(int64(elapsed) * int64(cfg.QPS) / int64(time.Second))
		phase := int(elapsed / phaseLen)
		for ; dispatched < owed; dispatched++ {
			send(dispatched, phase)
		}
	}
	return dispatched, nil
}
