module mrx

go 1.24
