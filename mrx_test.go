package mrx_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"mrx"
)

const doc = `<site>
  <people>
    <person id="p1"><name/></person>
    <person id="p2"><name/></person>
  </people>
  <auctions>
    <auction><seller person="p1"/></auction>
  </auctions>
</site>`

func TestFacadeLoadAndEval(t *testing.T) {
	g, err := mrx.LoadXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := mrx.Eval(g, mrx.MustParsePath("//people/person"))
	if len(got) != 2 {
		t.Fatalf("persons = %v", got)
	}
	if ref := mrx.Eval(g, mrx.MustParsePath("//seller/person")); len(ref) != 1 {
		t.Fatalf("seller ref = %v", ref)
	}
}

func TestFacadeIndexes(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref")
	want := mrx.Eval(g, e)

	a2 := mrx.BuildAK(g, 2)
	if res := mrx.AsQuerier(a2).Query(e); !reflect.DeepEqual(res.Answer, want) {
		t.Error("A(2) wrong answer")
	}

	one, depth := mrx.Build1Index(g)
	if depth <= 0 {
		t.Error("bisimulation depth")
	}
	if res := mrx.AsQuerier(one).Query(e); !res.Precise {
		t.Error("1-index should be precise")
	}

	dk, err := mrx.BuildDK(g, []*mrx.PathExpr{e})
	if err != nil {
		t.Fatal(err)
	}
	if res := mrx.AsQuerier(dk).Query(e); !res.Precise {
		t.Error("D(k)-construct should be precise for its FUP")
	}

	dp := mrx.NewDKPromote(g)
	dp.Support(e)
	if res := mrx.AsQuerier(dp.Index()).Query(e); !res.Precise {
		t.Error("D(k)-promote should be precise after Support")
	}

	mk := mrx.NewMK(g)
	mk.Support(e)
	if res := mk.Query(e); !res.Precise || !reflect.DeepEqual(res.Answer, want) {
		t.Error("M(k) wrong after Support")
	}

	ms := mrx.NewMStar(g)
	before := ms.Query(e)
	if !reflect.DeepEqual(before.Answer, want) {
		t.Error("M*(k) wrong before refinement")
	}
	ms.Support(e)
	after := ms.Query(e)
	if !after.Precise || !reflect.DeepEqual(after.Answer, want) {
		t.Error("M*(k) wrong after Support")
	}
	if after.Cost.Total() > before.Cost.Total() {
		t.Errorf("refinement made the FUP more expensive: %d -> %d",
			before.Cost.Total(), after.Cost.Total())
	}
}

func TestFacadeWorkload(t *testing.T) {
	g := mrx.NASAGraph(0.01, 2)
	qs := mrx.GenerateWorkload(g, mrx.WorkloadOptions{NumQueries: 50, MaxPathLen: 6, MaxQueryLen: 4, Seed: 3})
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	hist := mrx.WorkloadHistogram(qs)
	if len(hist) == 0 || hist[0] == 0 {
		t.Errorf("histogram %v", hist)
	}
	paths := mrx.EnumerateLabelPaths(g, 3)
	if len(paths) == 0 {
		t.Error("no paths")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := mrx.NewBuilder()
	r := b.AddNode("r")
	a := b.AddNode("a")
	b.AddEdge(r, a, mrx.TreeEdge)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatal("builder facade broken")
	}
}

func TestFacadePersistence(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 4)
	var gb bytes.Buffer
	if err := mrx.WriteGraph(&gb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := mrx.ReadGraph(bytes.NewReader(gb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("graph round trip size mismatch")
	}

	e := mrx.MustParsePath("//open_auction/bidder/personref")
	ig := mrx.BuildAK(g, 2)
	var ib bytes.Buffer
	if err := mrx.WriteIndex(&ib, ig); err != nil {
		t.Fatal(err)
	}
	ig2, err := mrx.ReadIndex(bytes.NewReader(ib.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mrx.AsQuerier(ig2).Query(e).Answer, mrx.AsQuerier(ig).Query(e).Answer) {
		t.Fatal("index round trip answer mismatch")
	}

	ms := mrx.NewMStar(g)
	ms.Support(e)
	var mb bytes.Buffer
	if err := mrx.WriteMStar(&mb, ms); err != nil {
		t.Fatal(err)
	}
	mr, err := mrx.OpenMStar(bytes.NewReader(mb.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := mr.LoadUpTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if partial.NumComponents() != 2 {
		t.Fatalf("partial components = %d", partial.NumComponents())
	}
	if !reflect.DeepEqual(partial.Query(e).Answer, ms.Query(e).Answer) {
		t.Fatal("partial M* answer mismatch")
	}
}

func TestFacadeUDAndBranching(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 6)
	ud := mrx.NewUD(g, 1, 1)
	in := mrx.MustParsePath("//open_auctions/open_auction")
	out := mrx.MustParsePath("//open_auction/bidder")
	res := ud.QueryBranching(in, out)
	want := mrx.EvalBranching(g, in, out)
	if len(res.Answer) != len(want) {
		t.Fatalf("branching answer %d want %d", len(res.Answer), len(want))
	}
	if !res.Precise {
		t.Error("UD(1,1) should answer this branching query precisely")
	}
}

func TestFacadeMisc(t *testing.T) {
	g, err := mrx.LoadXMLDetailed(strings.NewReader(doc), &mrx.LoadOptions{RootLabel: "top"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Graph.NodeLabelName(g.Graph.Root()) != "top" {
		t.Error("LoadXMLDetailed options ignored")
	}
	if g.Refs != 1 {
		t.Errorf("refs = %d", g.Refs)
	}
	e := mrx.PathFromLabels([]string{"people", "person"})
	if e.String() != "//people/person" {
		t.Errorf("PathFromLabels = %s", e)
	}
	d := mrx.NewDataIndex(g.Graph)
	if got := d.Eval(e); len(got) != 2 {
		t.Errorf("DataIndex eval = %v", got)
	}
	opts := mrx.DefaultWorkloadOptions(3)
	if opts.NumQueries != 500 || opts.MaxPathLen != 9 {
		t.Errorf("default workload options = %+v", opts)
	}
}

func TestFacadeMStarStrategies(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 8)
	ms := mrx.NewMStar(g)
	e := mrx.MustParsePath("//person/watches/watch")
	ms.Support(e)
	want := mrx.Eval(g, e)
	if got := ms.QueryBottomUp(e); len(got.Answer) != len(want) {
		t.Error("bottom-up mismatch")
	}
	if got := ms.QueryHybrid(e, 1); len(got.Answer) != len(want) {
		t.Error("hybrid mismatch")
	}
	if got, name := ms.QueryAuto(e); len(got.Answer) != len(want) || name == "" {
		t.Error("auto mismatch")
	}
	if got := ms.QuerySubpath(e, 0, 1); len(got.Answer) != len(want) {
		t.Error("subpath mismatch")
	}
}

// Every index type in the package must be servable through the one Querier
// interface and agree with ground truth.
func TestFacadeQuerier(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 5)
	e := mrx.MustParsePath("//open_auction/bidder/personref")
	want := mrx.Eval(g, e)

	one, _ := mrx.Build1Index(g)
	dk, err := mrx.BuildDK(g, []*mrx.PathExpr{e})
	if err != nil {
		t.Fatal(err)
	}
	dp := mrx.NewDKPromote(g)
	dp.Support(e)
	mk := mrx.NewMK(g)
	mk.Support(e)
	ms := mrx.NewMStarOpts(g, mrx.MStarOptions{Strategy: mrx.StrategyAuto})
	ms.Support(e)
	en, err := mrx.NewEngine(g, mrx.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	queriers := map[string]mrx.Querier{
		"a2":        mrx.AsQuerier(mrx.BuildAK(g, 2)),
		"1index":    mrx.AsQuerier(one),
		"dk":        mrx.AsQuerier(dk),
		"dkpromote": dp,
		"mk":        mk,
		"mstar":     ms,
		"ud":        mrx.NewUD(g, 2, 1),
		"engine":    en,
	}
	for name, q := range queriers {
		res := q.Query(e)
		if !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s via Querier: %d answers, want %d", name, len(res.Answer), len(want))
		}
	}

	// Every Querier also serves through the context-aware interface: the
	// adapter must return identical results under a live context, and the
	// engine must be picked up natively (no wrapping).
	for name, q := range queriers {
		cq := mrx.AsContextQuerier(q)
		res, err := cq.QueryCtx(context.Background(), e)
		if err != nil {
			t.Errorf("%s via ContextQuerier: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s via ContextQuerier: %d answers, want %d", name, len(res.Answer), len(want))
		}
	}
	if cq := mrx.AsContextQuerier(en); cq != mrx.ContextQuerier(en) {
		t.Error("AsContextQuerier(engine) should return the engine itself")
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	ig := mrx.BuildAK(g, 2)
	if _, err := mrx.AsContextQuerier(mrx.AsQuerier(ig)).QueryCtx(canceled, e); err == nil {
		t.Error("ContextQuerier adapter ignored a canceled context")
	}
}

// The facade Engine serves, refines and reports stats end to end.
func TestFacadeEngine(t *testing.T) {
	g := mrx.XMarkGraph(0.01, 6)
	e := mrx.MustParsePath("//person/watches/watch")
	want := mrx.Eval(g, e)

	en, err := mrx.NewEngine(g, mrx.EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := en.Query(e); !reflect.DeepEqual(res.Answer, want) {
		t.Fatal("engine wrong before refinement")
	}
	en.Support(e)
	res := en.Query(e)
	if !res.Precise || !reflect.DeepEqual(res.Answer, want) {
		t.Fatal("engine wrong after Support")
	}
	if en.Generation() == 0 {
		t.Error("Support published no snapshot")
	}

	var st mrx.EngineStats = en.Stats()
	if st.Queries != 2 || st.Refinements == 0 {
		t.Errorf("stats: %d queries, %d refinements", st.Queries, st.Refinements)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil || !strings.Contains(buf.String(), "queries") {
		t.Errorf("stats rendering: %v %q", err, buf.String())
	}
}
