// Auction: the paper's motivating scenario on an XMark-like auction site.
//
// A query workload arrives against a large, reference-rich document. Static
// indexes force a single global resolution: too coarse and every query pays
// validation; too fine and the index itself becomes expensive to traverse.
// The adaptive indexes refine only what the workload touches. This example
// builds all five index families for the same workload and prints the
// size/cost trade-off — a miniature of the paper's Figure 10.
package main

import (
	"fmt"

	"mrx"
)

func main() {
	g := mrx.XMarkGraph(0.05, 1)
	fmt.Printf("XMark-like data graph: %d nodes, %d edges (%d references)\n\n",
		g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	queries := mrx.GenerateWorkload(g, mrx.WorkloadOptions{
		NumQueries: 120, MaxPathLen: 9, MaxQueryLen: 9, Seed: 7,
	})
	fmt.Printf("workload: %d descendant queries, e.g. %s\n\n", len(queries), queries[0])

	avg := func(eval func(*mrx.PathExpr) mrx.Result) (total float64, validated float64) {
		for _, q := range queries {
			res := eval(q)
			total += float64(res.Cost.Total())
			validated += float64(res.Cost.DataNodes)
		}
		n := float64(len(queries))
		return total / n, validated / n
	}

	fmt.Printf("%-16s %8s %8s %12s %12s\n", "index", "nodes", "edges", "avg cost", "validation")
	row := func(name string, nodes, edges int, cost, valid float64) {
		fmt.Printf("%-16s %8d %8d %12.1f %12.1f\n", name, nodes, edges, cost, valid)
	}

	// Static A(k) family: one resolution for the whole graph.
	for _, k := range []int{0, 2, 4} {
		ig := mrx.BuildAK(g, k)
		cost, valid := avg(mrx.AsQuerier(ig).Query)
		row(fmt.Sprintf("A(%d)", k), ig.NumNodes(), ig.NumEdges(), cost, valid)
	}

	// D(k), constructed from the workload in one shot.
	if dk, err := mrx.BuildDK(g, queries); err == nil {
		cost, valid := avg(mrx.AsQuerier(dk).Query)
		row("D(k)-construct", dk.NumNodes(), dk.NumEdges(), cost, valid)
	}

	// D(k)-promote, M(k) and M*(k), refined incrementally per query.
	dp := mrx.NewDKPromote(g)
	for _, q := range queries {
		dp.Support(q)
	}
	cost, valid := avg(mrx.AsQuerier(dp.Index()).Query)
	row("D(k)-promote", dp.Index().NumNodes(), dp.Index().NumEdges(), cost, valid)

	mk := mrx.NewMK(g)
	for _, q := range queries {
		mk.Support(q)
	}
	cost, valid = avg(mk.Query)
	row("M(k)", mk.Index().NumNodes(), mk.Index().NumEdges(), cost, valid)

	ms := mrx.NewMStar(g)
	for _, q := range queries {
		ms.Support(q)
	}
	sz := ms.Sizes()
	cost, valid = avg(ms.Query)
	row("M*(k)", sz.Nodes, sz.Edges, cost, valid)

	fmt.Println("\nAfter refinement the adaptive indexes answer every workload query")
	fmt.Println("precisely (zero validation); M*(k) additionally evaluates each query")
	fmt.Println("in the coarsest component that supports it, which is why its average")
	fmt.Println("cost is far lower at comparable (or smaller) size.")
}
