// Persist: a disk-resident M*(k)-index with selective component loading —
// the direction §6 of the paper sketches as future work.
//
// The index is refined for a workload, written to disk component by
// component, and reopened twice: once loading only the coarse components
// (enough for short queries) and once loading everything. Short queries on
// the partial index are answered precisely without touching the fine
// components on disk.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mrx"
)

func main() {
	g := mrx.XMarkGraph(0.05, 9)
	ms := mrx.NewMStar(g)
	for _, s := range []string{
		"//person/name",
		"//open_auction/bidder/personref/person",
		"//site/open_auctions/open_auction/annotation/description",
	} {
		ms.Support(mrx.MustParsePath(s))
	}
	fmt.Printf("refined M*(k)-index: %d components, %d nodes\n",
		ms.NumComponents(), ms.Sizes().Nodes)

	dir, err := os.MkdirTemp("", "mrx-persist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	graphPath := filepath.Join(dir, "data.mrxg")
	indexPath := filepath.Join(dir, "index.mrxm")

	// Persist the data graph and the index.
	var gbuf, ibuf bytes.Buffer
	if err := mrx.WriteGraph(&gbuf, g); err != nil {
		log.Fatal(err)
	}
	if err := mrx.WriteMStar(&ibuf, ms); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(graphPath, gbuf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(indexPath, ibuf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on disk: graph %d bytes, index %d bytes\n\n", gbuf.Len(), ibuf.Len())

	// Reopen: load the graph, then only components I0..I2.
	gf, err := os.Open(graphPath)
	if err != nil {
		log.Fatal(err)
	}
	defer gf.Close()
	g2, err := mrx.ReadGraph(gf)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(indexPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	reader, err := mrx.OpenMStar(f, g2)
	if err != nil {
		log.Fatal(err)
	}
	partial, err := reader.LoadUpTo(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selective load: %d of %d components materialized\n",
		reader.Loaded(), reader.NumComponents())

	short := mrx.MustParsePath("//bidder/personref")
	res := partial.Query(short)
	fmt.Printf("%s on the partial index: %d answers, cost %d, precise=%v\n",
		short, len(res.Answer), res.Cost.Total(), res.Precise)

	// A deep query needs the fine components; load the rest incrementally.
	long := mrx.MustParsePath("//site/open_auctions/open_auction/annotation/description")
	full, err := reader.LoadUpTo(reader.NumComponents() - 1)
	if err != nil {
		log.Fatal(err)
	}
	res = full.Query(long)
	fmt.Printf("%s after loading all %d components: %d answers, cost %d, precise=%v\n",
		long, reader.Loaded(), len(res.Answer), res.Cost.Total(), res.Precise)
}
