// NASA: multiresolution indexing of an irregular, reference-heavy catalog.
//
// The NASA-like dataset reuses element names across many contexts (name
// appears under instrument, telescope, journal, field, ...) and wires
// datasets together with cross-references. This example shows the paper's
// "multiple resolutions per node" point: the same data nodes are targeted by
// both a short and a long path expression, and the M*(k)-index serves both
// from the appropriate component, while a single-resolution M(k)-index must
// pay the fine partitioning even for the short query.
package main

import (
	"fmt"

	"mrx"
)

func main() {
	g := mrx.NASAGraph(0.05, 3)
	fmt.Printf("NASA-like data graph: %d nodes, %d edges (%d references)\n\n",
		g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	// Long FUPs ending at name nodes through five different deep contexts.
	// Supporting them forces fine partitioning of the name nodes.
	longFUPs := []*mrx.PathExpr{
		mrx.MustParsePath("//dataset/tableHead/fields/field/name"),
		mrx.MustParsePath("//dataset/reference/source/other/name"),
		mrx.MustParsePath("//dataset/instrument/observatory/name"),
		mrx.MustParsePath("//relatedData/dataset/instrument/name"),
		mrx.MustParsePath("//journals/journal/name"),
	}
	short := mrx.MustParsePath("//name")

	mk := mrx.NewMK(g)
	ms := mrx.NewMStar(g)
	fmt.Println("supporting five long FUPs ending at name nodes on both adaptive indexes...")
	for _, q := range longFUPs {
		mk.Support(q)
		ms.Support(q)
	}
	fmt.Printf("M(k): %d nodes; M*(k): %d nodes across %d components\n\n",
		mk.Index().NumNodes(), ms.Sizes().Nodes, ms.Sizes().Components)

	fmt.Printf("%-45s %10s %10s\n", "query", "M(k)", "M*(k)")
	for _, q := range longFUPs {
		fmt.Printf("%-45s %10d %10d\n", q.String(), mk.Query(q).Cost.Total(), ms.Query(q).Cost.Total())
	}

	// The short query targets all the same name nodes at once. The M(k)-index
	// must visit every finely partitioned name node; the M*(k)-index answers
	// it from the single name node of its coarsest component.
	mkShort := mk.Query(short)
	msShort := ms.Query(short)
	fmt.Printf("%-45s %10d %10d   <- multiresolution pay-off\n\n", short.String(), mkShort.Cost.Total(), msShort.Cost.Total())

	if len(mkShort.Answer) != len(msShort.Answer) {
		panic("indexes disagree")
	}
	fmt.Printf("both return the same %d name nodes; the multiresolution hierarchy\n", len(msShort.Answer))
	fmt.Println("lets short queries stay cheap even after deep refinement.")

	// Component inventory: successively finer partitions of the same data.
	fmt.Println("\nM*(k) component inventory:")
	for i := 0; i < ms.NumComponents(); i++ {
		comp := ms.Component(i)
		fmt.Printf("  I%d: %d index nodes, %d edges\n", i, comp.NumNodes(), comp.NumEdges())
	}
}
