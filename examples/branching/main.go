// Branching: UD(k,l)-index evaluation of branching path expressions //p[q].
//
// Simple up-bisimilar indexes (1-index, A(k), D(k), M(k), M*(k)) guarantee
// nothing about outgoing paths: answering "auctions that have a bidder who
// references a person" means filtering candidates against the data graph.
// The UD(k,l)-index (Wu et al., discussed in §2/§4.1 of He & Yang) also
// groups nodes by l-down-bisimilarity, so the outgoing predicate [q] is
// answered from the index alone whenever length(q) ≤ l.
package main

import (
	"fmt"

	"mrx"
)

func main() {
	g := mrx.XMarkGraph(0.05, 6)
	fmt.Printf("XMark-like data graph: %d nodes, %d edges (%d references)\n\n",
		g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	queries := []struct{ in, out string }{
		{"//open_auctions/open_auction", "//open_auction/bidder/personref"},
		{"//people/person", "//person/watches/watch"},
		{"//regions/europe/item", "//item/mailbox/mail"},
		{"//closed_auctions/closed_auction", "//closed_auction/annotation/happiness"},
	}

	for _, kl := range [][2]int{{2, 2}, {2, 0}} {
		ud := mrx.NewUD(g, kl[0], kl[1])
		fmt.Printf("UD(%d,%d): %d index nodes\n", kl[0], kl[1], ud.Index().NumNodes())
		for _, q := range queries {
			in := mrx.MustParsePath(q.in)
			out := mrx.MustParsePath(q.out)
			res := ud.QueryBranching(in, out)
			truth := mrx.EvalBranching(g, in, out)
			status := "PRECISE (index only)"
			if !res.Precise {
				status = fmt.Sprintf("validated (%d data nodes visited)", res.Cost.DataNodes)
			}
			fmt.Printf("  %s[%s]: %d answers, cost %d, %s\n",
				q.in, q.out, len(res.Answer), res.Cost.Total(), status)
			if len(res.Answer) != len(truth) {
				panic("answer mismatch against ground truth")
			}
		}
		fmt.Println()
	}
	fmt.Println("With l=2 the outgoing predicates are answered from the index graph;")
	fmt.Println("with l=0 the same index shape degenerates to A(k) behaviour and every")
	fmt.Println("predicate beyond length 0 must be validated against the data graph.")
}
