// Quickstart: load an XML document, build the M*(k)-index, answer a path
// expression, and refine the index so the query becomes precise.
package main

import (
	"fmt"
	"log"
	"strings"

	"mrx"
)

const doc = `<site>
  <people>
    <person id="p1"><name/><emailaddress/></person>
    <person id="p2"><name/></person>
    <person id="p3"><name/><address><city/></address></person>
  </people>
  <open_auctions>
    <open_auction>
      <seller person="p1"/>
      <bidder><personref person="p2"/></bidder>
      <bidder><personref person="p3"/></bidder>
    </open_auction>
  </open_auctions>
</site>`

func main() {
	// 1. Parse the document into a data graph. Element nesting becomes tree
	// edges; the person="..." ID/IDREF pairs become reference edges.
	g, err := mrx.LoadXML(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data graph: %d nodes, %d edges (%d references)\n\n",
		g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	// 2. Build an adaptive M*(k)-index. It starts as a coarse A(0)-index:
	// one index node per element name.
	ms := mrx.NewMStar(g)

	// 3. Ask for the persons reached through bidder references. The coarse
	// index cannot answer a length-2 path precisely, so the answer is
	// validated against the data graph (the validation cost is reported).
	q := mrx.MustParsePath("//bidder/personref/person")
	res := ms.Query(q)
	fmt.Printf("before refinement: %s -> %d answers, cost %d (index %d + validation %d)\n",
		q, len(res.Answer), res.Cost.Total(), res.Cost.IndexNodes, res.Cost.DataNodes)

	// 4. Tell the index this is a frequently used path expression. REFINE*
	// raises the resolution of exactly the index nodes the query touches.
	ms.Support(q)

	// 5. The same query is now answered precisely from the index alone.
	res = ms.Query(q)
	fmt.Printf("after refinement:  %s -> %d answers, cost %d (index %d + validation %d)\n",
		q, len(res.Answer), res.Cost.Total(), res.Cost.IndexNodes, res.Cost.DataNodes)

	sz := ms.Sizes()
	fmt.Printf("\nM*(k)-index: %d components, %d nodes, %d edges (deduplicated)\n",
		sz.Components, sz.Nodes, sz.Edges)
	for _, id := range res.Answer {
		fmt.Printf("  answer node %d: %s\n", id, g.NodeLabelName(id))
	}
}
