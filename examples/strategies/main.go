// Strategies: compare the three M*(k) query-evaluation strategies of §4.1.
//
// naive     — evaluate the whole expression in component I_length;
// top-down  — evaluate each prefix in the coarsest component that supports
//
//	it, descending through supernode/subnode links (QUERYTOPDOWN);
//
// subpath   — evaluate a short, selective subpath in a coarse component
//
//	first, then verify prefix/suffix in the fine component.
//
// All three return identical answers; they differ in how many index nodes
// they visit. Which wins depends on the query, which is exactly the query-
// optimization question the paper leaves open.
package main

import (
	"fmt"

	"mrx"
)

func main() {
	g := mrx.XMarkGraph(0.05, 2)
	ms := mrx.NewMStar(g)

	queries := mrx.GenerateWorkload(g, mrx.WorkloadOptions{
		NumQueries: 80, MaxPathLen: 9, MaxQueryLen: 9, Seed: 4,
	})
	for _, q := range queries {
		ms.Support(q)
	}
	fmt.Printf("M*(k) refined for %d queries: %d components, %d nodes\n\n",
		len(queries), ms.NumComponents(), ms.Sizes().Nodes)

	fmt.Printf("%-55s %8s %8s %8s %8s\n", "query", "naive", "topdown", "bottomup", "subpath")
	type agg struct{ naive, top, bot, sub int }
	var byLen [10]agg
	var counts [10]int
	for _, q := range queries {
		n := ms.QueryNaive(q).Cost.Total()
		t := ms.QueryTopDown(q).Cost.Total()
		bu := ms.QueryBottomUp(q).Cost.Total()
		// Subpath pre-filter: the middle window of length min(2, len).
		w := 2
		if q.Length() < w {
			w = q.Length()
		}
		start := (q.Length() - w) / 2
		s := ms.QuerySubpath(q, start, start+w).Cost.Total()
		if q.Length() >= 4 {
			fmt.Printf("%-55s %8d %8d %8d %8d\n", q.String(), n, t, bu, s)
		}
		byLen[q.Length()] = agg{byLen[q.Length()].naive + n, byLen[q.Length()].top + t, byLen[q.Length()].bot + bu, byLen[q.Length()].sub + s}
		counts[q.Length()]++
	}

	fmt.Printf("\naverage cost by query length:\n%-8s %8s %8s %8s %8s %8s\n", "length", "count", "naive", "topdown", "bottomup", "subpath")
	for l, c := range counts {
		if c == 0 {
			continue
		}
		fmt.Printf("%-8d %8d %8.1f %8.1f %8.1f %8.1f\n", l, c,
			float64(byLen[l].naive)/float64(c),
			float64(byLen[l].top)/float64(c),
			float64(byLen[l].bot)/float64(c),
			float64(byLen[l].sub)/float64(c))
	}
}
