package mrx_test

import (
	"fmt"
	"strings"

	"mrx"
)

// A document small enough to read: two persons, one referenced by a seller.
const exampleDoc = `<site>
  <people>
    <person id="p1"><name/></person>
    <person id="p2"><name/></person>
  </people>
  <auctions>
    <auction><seller person="p1"/></auction>
  </auctions>
</site>`

func ExampleLoadXML() {
	g, err := mrx.LoadXML(strings.NewReader(exampleDoc))
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", g.NumNodes())
	fmt.Println("reference edges:", g.NumRefEdges())
	// Output:
	// nodes: 10
	// reference edges: 1
}

func ExampleParsePath() {
	e, err := mrx.ParsePath("//people/person")
	if err != nil {
		panic(err)
	}
	fmt.Println("length:", e.Length())
	fmt.Println("rooted:", e.Rooted)
	fmt.Println(e)
	// Output:
	// length: 1
	// rooted: false
	// //people/person
}

func ExampleEval() {
	g, _ := mrx.LoadXML(strings.NewReader(exampleDoc))
	// The seller element reaches person p1 through its IDREF edge.
	ids := mrx.Eval(g, mrx.MustParsePath("//auction/seller/person"))
	for _, id := range ids {
		fmt.Println(g.NodeLabelName(id))
	}
	// Output:
	// person
}

func ExampleNewMStar() {
	g, _ := mrx.LoadXML(strings.NewReader(exampleDoc))
	ms := mrx.NewMStar(g)
	q := mrx.MustParsePath("//auction/seller")

	before := ms.Query(q)
	ms.Support(q) // refine for this frequently-used path expression
	after := ms.Query(q)

	fmt.Println("answers:", len(after.Answer))
	fmt.Println("precise before:", before.Precise, "after:", after.Precise)
	fmt.Println("components:", ms.NumComponents())
	// Output:
	// answers: 1
	// precise before: false after: true
	// components: 2
}

func ExampleBuildAK() {
	g, _ := mrx.LoadXML(strings.NewReader(exampleDoc))
	a1 := mrx.BuildAK(g, 1)
	res := mrx.AsQuerier(a1).Query(mrx.MustParsePath("//people/person"))
	fmt.Println("precise:", res.Precise, "answers:", len(res.Answer))
	// Output:
	// precise: true answers: 2
}
