package mrx

import (
	"io"

	"mrx/internal/store"
)

// WriteGraph serializes a data graph in the compact binary format of
// package store.
func WriteGraph(w io.Writer, g *Graph) error { return store.WriteGraph(w, g) }

// ReadGraph deserializes a data graph.
func ReadGraph(r io.Reader) (*Graph, error) { return store.ReadGraph(r) }

// WriteIndex serializes a single structural index (1-index, A(k), D(k) or
// M(k)); the data graph is supplied again at load time.
func WriteIndex(w io.Writer, ig *Index) error { return store.WriteIndex(w, ig) }

// ReadIndex deserializes an index over its data graph.
func ReadIndex(r io.Reader, g *Graph) (*Index, error) { return store.ReadIndex(r, g) }

// WriteMStar serializes an M*(k)-index as independently loadable
// per-component sections.
func WriteMStar(w io.Writer, ms *MStar) error { return store.WriteMStar(w, ms) }

// ReadMStar loads a complete M*(k)-index.
func ReadMStar(r io.Reader, g *Graph) (*MStar, error) { return store.ReadMStar(r, g) }

// WriteFrozen serializes a frozen index snapshot; its body encoding matches
// WriteIndex, but the magic selects the fast loader.
func WriteFrozen(w io.Writer, fz *FrozenIndex) error { return store.WriteFrozen(w, fz) }

// ReadFrozen deserializes a frozen index snapshot over g without ever
// materializing a mutable index graph: the CSR adjacency is wired from flat
// arrays — the persistence fast path.
func ReadFrozen(r io.Reader, g *Graph) (*FrozenIndex, error) { return store.ReadFrozen(r, g) }

// MStarReader loads M*(k) components selectively — the disk-resident,
// load-what-the-query-needs operation the paper describes as future work.
type MStarReader = store.MStarReader

// OpenMStar prepares selective loading of a serialized M*(k)-index:
// the header is read eagerly, components on demand via LoadUpTo.
func OpenMStar(r io.Reader, g *Graph) (*MStarReader, error) { return store.OpenMStar(r, g) }
