package mrx

import (
	"io"

	"mrx/internal/mmapstore"
	"mrx/internal/store"
)

// WriteGraph serializes a data graph in the compact binary format of
// package store.
func WriteGraph(w io.Writer, g *Graph) error { return store.WriteGraph(w, g) }

// ReadGraph deserializes a data graph.
func ReadGraph(r io.Reader) (*Graph, error) { return store.ReadGraph(r) }

// WriteIndex serializes a single structural index (1-index, A(k), D(k) or
// M(k)); the data graph is supplied again at load time.
func WriteIndex(w io.Writer, ig *Index) error { return store.WriteIndex(w, ig) }

// ReadIndex deserializes an index over its data graph.
func ReadIndex(r io.Reader, g *Graph) (*Index, error) { return store.ReadIndex(r, g) }

// WriteMStar serializes an M*(k)-index as independently loadable
// per-component sections.
func WriteMStar(w io.Writer, ms *MStar) error { return store.WriteMStar(w, ms) }

// ReadMStar loads a complete M*(k)-index.
func ReadMStar(r io.Reader, g *Graph) (*MStar, error) { return store.ReadMStar(r, g) }

// WriteFrozen serializes a frozen index snapshot; its body encoding matches
// WriteIndex, but the magic selects the fast loader.
func WriteFrozen(w io.Writer, fz *FrozenIndex) error { return store.WriteFrozen(w, fz) }

// ReadFrozen deserializes a frozen index snapshot over g without ever
// materializing a mutable index graph: the CSR adjacency is wired from flat
// arrays — the persistence fast path.
func ReadFrozen(r io.Reader, g *Graph) (*FrozenIndex, error) { return store.ReadFrozen(r, g) }

// MStarReader loads M*(k) components selectively — the disk-resident,
// load-what-the-query-needs operation the paper describes as future work.
type MStarReader = store.MStarReader

// OpenMStar prepares selective loading of a serialized M*(k)-index:
// the header is read eagerly, components on demand via LoadUpTo.
func OpenMStar(r io.Reader, g *Graph) (*MStarReader, error) { return store.OpenMStar(r, g) }

// SnapshotWriteOptions configures the memory-mapped snapshot encoder
// (internal/mmapstore): page-aligned, checksummed sections that a reader
// maps and serves zero-copy.
type SnapshotWriteOptions = mmapstore.WriteOptions

// SnapshotOpenOptions configures snapshot loading: full verification by
// default, Trusted for O(1) reopen of self-published files, ForceCopy to
// decode instead of taking views.
type SnapshotOpenOptions = mmapstore.Options

// Snapshot is an open memory-mapped frozen M*(k) snapshot; its FrozenMStar
// serves queries directly over the mapped bytes.
type Snapshot = mmapstore.Snapshot

// WriteSnapshot encodes a frozen M*(k)-index in the memory-mapped snapshot
// format.
func WriteSnapshot(w io.Writer, fm *FrozenMStar, o SnapshotWriteOptions) error {
	return mmapstore.Write(w, fm, o)
}

// WriteSnapshotFile writes and fsyncs a snapshot file in place (no
// atomicity; see PublishSnapshot for crash-safe replacement).
func WriteSnapshotFile(path string, fm *FrozenMStar, o SnapshotWriteOptions) error {
	return mmapstore.WriteFile(path, fm, o)
}

// PublishSnapshot atomically replaces path with a new snapshot
// (write-temp + fsync + rename): a reader never observes a torn file, and
// live mappings of the previous generation stay valid.
func PublishSnapshot(path string, fm *FrozenMStar, o SnapshotWriteOptions) error {
	return mmapstore.Publish(path, fm, o)
}

// OpenSnapshot memory-maps a snapshot file over its data graph and wires a
// zero-copy FrozenMStar view onto the mapped bytes.
func OpenSnapshot(path string, g *Graph, o SnapshotOpenOptions) (*Snapshot, error) {
	return mmapstore.Open(path, g, o)
}

// OpenSnapshotBytes is OpenSnapshot over an in-memory buffer.
func OpenSnapshotBytes(data []byte, g *Graph, o SnapshotOpenOptions) (*Snapshot, error) {
	return mmapstore.OpenBytes(data, g, o)
}
