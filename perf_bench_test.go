// Micro-benchmarks for the individual operations underlying the figure
// experiments: parsing, partition refinement, index construction, adaptive
// refinement and query evaluation.
package mrx_test

import (
	"fmt"
	"testing"

	"mrx"
	"mrx/internal/adapt"
	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/engine"
	"mrx/internal/partition"
	"mrx/internal/query"
)

// mustEngineB constructs an engine from options the benchmark knows are
// valid.
func mustEngineB(b *testing.B, g *mrx.Graph, o engine.Options) *engine.Engine {
	b.Helper()
	en, err := engine.New(g, o)
	if err != nil {
		b.Fatal(err)
	}
	return en
}

func BenchmarkLoadXMarkXML(b *testing.B) {
	doc := mrx.GenerateXMark(0.1, 1)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrx.LoadXMLBytes(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKBisimulationRound(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	p := partition.ByLabel(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.RefineOnce(g, p, nil)
	}
}

func BenchmarkBuildA3XMark(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.AK(g, 3)
	}
}

func BenchmarkBuild1IndexXMark(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.OneIndex(g)
	}
}

func BenchmarkMKSupportFUP(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk := core.NewMK(g)
		mk.Support(e)
	}
}

func BenchmarkMStarSupportFUP(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := core.NewMStar(g)
		ms.Support(e)
	}
}

func BenchmarkQueryA3Validated(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ig := baseline.AK(g, 3)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.EvalIndex(ig, e)
	}
}

func BenchmarkQueryMStarTopDown(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ms := core.NewMStar(g)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	ms.Support(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.QueryTopDown(e)
	}
}

func BenchmarkQueryFrozenTopDown(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ms := core.NewMStar(g)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	ms.Support(e)
	fz := ms.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz.Query(e)
	}
}

// BenchmarkFreezeMStar measures flattening a refined M*(k)-index into its
// frozen read-path view — the full-freeze cost an engine pays at worst per
// publish (incremental publishes re-freeze only dirtied components).
func BenchmarkFreezeMStar(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ms := core.NewMStar(g)
	ms.Support(mrx.MustParsePath("//open_auction/bidder/personref/person/name"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Freeze()
	}
}

// BenchmarkEnginePublish measures one Support round on a fresh engine:
// precision probe, clone, REFINE*, incremental re-freeze, publish — the
// write-side latency of the snapshot lifecycle.
func BenchmarkEnginePublish(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		en := mustEngineB(b, g, engine.Options{})
		b.StartTimer()
		if !en.Support(e) {
			b.Fatal("FUP unexpectedly precise; nothing published")
		}
	}
}

func BenchmarkGroundTruthEval(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	d := query.NewDataIndex(g)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Eval(e)
	}
}

// Parallel validation of one expensive under-refined query at increasing
// worker-pool sizes. On a multi-core machine the wall time should drop with
// workers; on a single core it measures the pool's overhead.
func BenchmarkParallelValidation(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ig := baseline.AK(g, 1)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query.EvalIndexOpts(ig, e, query.ValidateOpts{Workers: workers})
			}
		})
	}
}

// Engine serving throughput under concurrent readers: b.RunParallel spreads
// the query mix across GOMAXPROCS goroutines hitting one refined engine.
func BenchmarkEngineServing(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	queries := []*mrx.PathExpr{
		mrx.MustParsePath("//open_auction/bidder/personref"),
		mrx.MustParsePath("//person/name"),
		mrx.MustParsePath("//item/description"),
		mrx.MustParsePath("//person/watches/watch"),
	}
	for _, readers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			en := mustEngineB(b, g, engine.Options{})
			for _, q := range queries {
				en.Support(q)
			}
			b.SetParallelism(readers) // readers × GOMAXPROCS goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					en.Query(queries[i%len(queries)])
					i++
				}
			})
		})
	}
}

// BenchmarkEngineServingAutoTune measures the workload-tracking hook's cost
// on the serving path relative to BenchmarkEngineServing: "off" is the nil
// tuner (one nil check), "on" pays a sketch probe plus atomic counter bumps
// per query. Compare readers=N here against BenchmarkEngineServing's
// readers=N rows; the tracking overhead budget is ≤5% ns/op when enabled.
func BenchmarkEngineServingAutoTune(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	queries := []*mrx.PathExpr{
		mrx.MustParsePath("//open_auction/bidder/personref"),
		mrx.MustParsePath("//person/name"),
		mrx.MustParsePath("//item/description"),
		mrx.MustParsePath("//person/watches/watch"),
	}
	for _, mode := range []string{"off", "on"} {
		for _, readers := range []int{1, 8} {
			b.Run(fmt.Sprintf("tracking=%s/readers=%d", mode, readers), func(b *testing.B) {
				opts := engine.Options{}
				if mode == "on" {
					// Manual stepping: the hot path pays for tracking, never
					// for plan execution.
					opts.AutoTune = &adapt.Config{TopK: 64}
				}
				en := mustEngineB(b, g, opts)
				for _, q := range queries {
					en.Support(q)
				}
				b.SetParallelism(readers)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						en.Query(queries[i%len(queries)])
						i++
					}
				})
			})
		}
	}
}

// BenchmarkAutoTuneSteadyState measures steady-state serving cost of an
// auto-tuned engine after convergence on its hot set, against the statically
// refined oracle — the wall-clock side of the convergence criterion asserted
// (on the deterministic cost metric) in the engine tests.
func BenchmarkAutoTuneSteadyState(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	queries := []*mrx.PathExpr{
		mrx.MustParsePath("//open_auction/bidder/personref"),
		mrx.MustParsePath("//person/name"),
		mrx.MustParsePath("//item/description"),
	}
	converge := func(en *engine.Engine) {
		for epoch := 0; epoch < 6; epoch++ {
			for i := 0; i < 5; i++ {
				for _, q := range queries {
					en.Query(q)
				}
			}
			en.Tuner().Step()
		}
	}
	b.Run("tuned", func(b *testing.B) {
		en := mustEngineB(b, g, engine.Options{AutoTune: &adapt.Config{
			TopK: 64, HotThreshold: 3, PromoteAfter: 2, DemoteAfter: 3, Cooldown: 2,
		}})
		converge(en)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			en.Query(queries[i%len(queries)])
		}
	})
	b.Run("oracle", func(b *testing.B) {
		en := mustEngineB(b, g, engine.Options{})
		for _, q := range queries {
			en.Support(q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			en.Query(queries[i%len(queries)])
		}
	})
}
