// Micro-benchmarks for the individual operations underlying the figure
// experiments: parsing, partition refinement, index construction, adaptive
// refinement and query evaluation.
package mrx_test

import (
	"testing"

	"mrx"
	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/partition"
	"mrx/internal/query"
)

func BenchmarkLoadXMarkXML(b *testing.B) {
	doc := mrx.GenerateXMark(0.1, 1)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrx.LoadXMLBytes(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKBisimulationRound(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	p := partition.ByLabel(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.RefineOnce(g, p, nil)
	}
}

func BenchmarkBuildA3XMark(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.AK(g, 3)
	}
}

func BenchmarkBuild1IndexXMark(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.OneIndex(g)
	}
}

func BenchmarkMKSupportFUP(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk := core.NewMK(g)
		mk.Support(e)
	}
}

func BenchmarkMStarSupportFUP(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := core.NewMStar(g)
		ms.Support(e)
	}
}

func BenchmarkQueryA3Validated(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ig := baseline.AK(g, 3)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.EvalIndex(ig, e)
	}
}

func BenchmarkQueryMStarTopDown(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	ms := core.NewMStar(g)
	e := mrx.MustParsePath("//person/watches/watch/open_auction/itemref")
	ms.Support(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.QueryTopDown(e)
	}
}

func BenchmarkGroundTruthEval(b *testing.B) {
	g := mrx.XMarkGraph(0.1, 1)
	d := query.NewDataIndex(g)
	e := mrx.MustParsePath("//open_auction/bidder/personref/person")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Eval(e)
	}
}
