package mrx

import (
	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/index"
	"mrx/internal/query"
)

// Index is a structural index graph: nodes carry an extent (an equivalence
// class of data nodes) and a local similarity value k.
type Index = index.Graph

// IndexNode is one node of a structural index.
type IndexNode = index.Node

// IndexStats summarizes an index graph.
type IndexStats = index.Stats

// KInfinity is the local similarity of 1-index nodes, whose extents are
// fully bisimilar and therefore precise for paths of any length.
const KInfinity = baseline.KInfinity

// BuildAK builds the A(k)-index of g: the k-bisimilarity partition with a
// single global resolution k (Kaushik et al., ICDE 2002).
func BuildAK(g *Graph, k int) *Index { return baseline.AK(g, k) }

// Build1Index builds the 1-index of g (Milo & Suciu): full-bisimulation
// classes, precise for every simple path expression. It also returns the
// graph's bisimulation depth.
func Build1Index(g *Graph) (*Index, int) { return baseline.OneIndex(g) }

// BuildDK builds a D(k)-index from scratch for a workload of frequently
// used path expressions, using the construction procedure of Chen et al.
// (SIGMOD 2003): every index node with label l gets the workload-derived
// local similarity requirement of l.
func BuildDK(g *Graph, fups []*PathExpr) (*Index, error) {
	return baseline.DKConstruct(g, fups)
}

// DKPromote is the incrementally refined D(k)-index (PROMOTE procedure).
// It over-refines for irrelevant data nodes and under overqualified
// parents; it is provided as the baseline the M(k)-index improves on.
type DKPromote = baseline.DKPromote

// NewDKPromote initializes a D(k)-promote index as an A(0)-index of g.
func NewDKPromote(g *Graph) *DKPromote { return baseline.NewDKPromote(g) }

// MK is the M(k)-index (paper §3): adaptive like D(k)-promote, but its
// REFINE procedure uses the query's data-graph target set so irrelevant
// index and data nodes are never over-refined.
type MK = core.MK

// NewMK initializes an M(k)-index as an A(0)-index of g.
func NewMK(g *Graph) *MK { return core.NewMK(g) }

// MStar is the M*(k)-index (paper §4): a hierarchy of component indexes at
// resolutions 0..k that additionally eliminates over-refinement due to
// overqualified parents and supports multiresolution query evaluation
// (naive, top-down, and subpath pre-filtering strategies).
type MStar = core.MStar

// MStarSizes reports M*(k) sizes under the paper's deduplicated accounting
// and the naive logical accounting.
type MStarSizes = core.SizeStats

// MStarOptions configures an M*(k)-index built with NewMStarOpts: a
// resolution cap (MaxK), the query strategy, and the validation worker-pool
// size.
type MStarOptions = core.MStarOptions

// Strategy names an M*(k) query-evaluation strategy for MStarOptions and
// EngineOptions; the zero value selects the default (top-down).
type Strategy = core.Strategy

// Query-evaluation strategies.
const (
	StrategyTopDown  = core.StrategyTopDown
	StrategyNaive    = core.StrategyNaive
	StrategySubpath  = core.StrategySubpath
	StrategyBottomUp = core.StrategyBottomUp
	StrategyHybrid   = core.StrategyHybrid
	StrategyAuto     = core.StrategyAuto
)

// NewMStar initializes an M*(k)-index with the single component I0 and
// default options.
func NewMStar(g *Graph) *MStar { return core.NewMStar(g) }

// NewMStarOpts initializes an M*(k)-index with the single component I0 and
// explicit options.
func NewMStarOpts(g *Graph, opts MStarOptions) *MStar { return core.NewMStarOpts(g, opts) }

// FrozenIndex is an immutable, CSR-flattened snapshot of an Index: the
// read-path twin of the mutable refinement graph. It contains no maps at
// all — serving queries from it performs zero map operations and traverses
// in a deterministic order. Obtain one with Index.Freeze.
type FrozenIndex = index.Frozen

// FrozenID identifies a node inside one FrozenIndex; IDs are dense.
type FrozenID = index.FrozenID

// FrozenMStar is the frozen read-path view of an M*(k)-index: one
// FrozenIndex per component, evaluating the same query strategies over flat
// arrays. The Engine serves every query from one. Obtain it with
// MStar.Freeze (or FreezeReusing for incremental re-freezing).
type FrozenMStar = core.FrozenMStar

// QueryFrozen evaluates e over a frozen index snapshot with EvalIndex
// semantics, map-free.
func QueryFrozen(fz *FrozenIndex, e *PathExpr) Result { return query.EvalFrozen(fz, e) }

// AsFrozenQuerier wraps a frozen index snapshot as a Querier.
func AsFrozenQuerier(fz *FrozenIndex) Querier { return query.AsFrozenQuerier(fz) }

// Querier is the uniform query interface implemented by every index in the
// package: single-graph indexes via AsQuerier, the adaptive indexes
// (DKPromote, MK, MStar, UD) directly, and the concurrent Engine.
//
// (The historical free function QueryIndex(ig, e) is gone; write
// AsQuerier(ig).Query(e) instead.)
type Querier = query.Querier

// AsQuerier wraps a single-graph structural index (1-index, A(k),
// D(k)-construct, or an adaptive index's underlying graph) as a Querier.
func AsQuerier(ig *Index) Querier { return query.AsQuerier(ig) }

// ContextQuerier is the context-aware counterpart of Querier: evaluation
// observes ctx and aborts — returning ctx's error — once the context is
// canceled or past its deadline. Engine implements it natively (QueryCtx
// polls ctx between validation candidates); the network serving layer
// consumes only this interface, so any index type can sit behind mrserve.
type ContextQuerier = query.ContextQuerier

// AsContextQuerier adapts any Querier to ContextQuerier. Types that already
// implement it (Engine) are returned unchanged; for the rest, the context
// is honored at call boundaries around the uninterruptible Query.
func AsContextQuerier(q Querier) ContextQuerier { return query.AsContextQuerier(q) }

// UD is the UD(k,l)-index (Wu et al., WAIM 2003), discussed in §2/§4.1 of
// the paper: up- and down-bisimilarity combined, precise for branching
// queries //p[q] with length(p) ≤ k and length(q) ≤ l.
type UD = baseline.UD

// BranchingResult is the outcome of a branching query //p[q].
type BranchingResult = query.BranchingResult

// QueryIndexBranching evaluates the branching query //in[out] over any
// structural index: the outgoing predicate is checked on the index graph
// (safe) and validated against the data unless a UD(k,l)-style downward
// guarantee covers it (downGuarantee = 0 for up-only indexes).
func QueryIndexBranching(ig *Index, in, out *PathExpr, downGuarantee int) BranchingResult {
	return query.EvalBranching(ig, in, out, downGuarantee)
}

// NewUD builds the UD(k,l)-index of g.
func NewUD(g *Graph, k, l int) *UD { return baseline.NewUD(g, k, l) }

// EvalBranching computes the ground truth of the branching query //p[q] on
// the data graph: nodes that terminate an instance of in and start an
// instance of out.
func EvalBranching(g *Graph, in, out *PathExpr) []NodeID {
	return query.EvalBranchingData(g, in, out)
}
